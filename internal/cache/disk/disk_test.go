package disk

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isl"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/scop"
)

// infoDigest folds every observable component of a detection result
// into a 128-bit content digest — the same fold the cross-backend
// golden tests use (internal/core), so "equal digests" here means the
// same thing it means there: bit-identical detection results.
func infoDigest(in *core.Info) string {
	d := isl.NewDigest()
	d.WriteInt(len(in.Pairs))
	for _, p := range in.Pairs {
		d.WriteInt(p.Src.Index)
		d.WriteString(p.Src.Name)
		d.WriteInt(p.Dst.Index)
		d.WriteString(p.Dst.Name)
		p.T.HashInto(d)
		p.V.HashInto(d)
		p.Y.HashInto(d)
	}
	d.WriteInt(len(in.Stmts))
	for _, si := range in.Stmts {
		d.WriteInt(si.Stmt.Index)
		d.WriteString(si.Stmt.Name)
		si.E.HashInto(d)
		d.WriteInt(len(si.Blocks))
		for _, b := range si.Blocks {
			d.WriteVec(b.Leader)
			d.WriteInt(len(b.Members))
			for _, v := range b.Members {
				d.WriteVec(v)
			}
		}
		d.WriteInt(len(si.InDeps))
		for _, dep := range si.InDeps {
			d.WriteInt(dep.Src.Index)
			d.WriteString(dep.Src.Name)
			dep.Rel.HashInto(d)
		}
	}
	lo, hi := d.Sum128()
	return fmt.Sprintf("%016x%016x", hi, lo)
}

func testPrograms(t *testing.T) []struct {
	name string
	sc   *scop.SCoP
	opts core.Options
} {
	t.Helper()
	var out []struct {
		name string
		sc   *scop.SCoP
		opts core.Options
	}
	for _, name := range []string{"P4", "P7", "P10"} {
		p, err := kernels.Table9Program(name, 12, 2)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, struct {
			name string
			sc   *scop.SCoP
			opts core.Options
		}{name, p.SCoP, core.Options{}})
	}
	out = append(out, struct {
		name string
		sc   *scop.SCoP
		opts core.Options
	}{"listing3_coarse", kernels.Listing3(16).SCoP, core.Options{MinBlockIters: 4}})
	out = append(out, struct {
		name string
		sc   *scop.SCoP
		opts core.Options
	}{"nmm", kernels.MMChain(3, 8, kernels.MM).SCoP, core.Options{}})
	return out
}

// TestDiskRoundTripBitIdentical is the cross-backend-style contract of
// the disk tier: Detect → Store → Load into a separately built SCoP of
// the same content must rebind to an Info that is structurally equal
// AND digest-identical to a fresh detection on that instance.
func TestDiskRoundTripBitIdentical(t *testing.T) {
	store, err := New(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range testPrograms(t) {
		want, err := core.Detect(tc.sc, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want.Freeze()
		key := cache.KeyFor(tc.sc, tc.opts)
		store.Store(key, want)

		got, ok := store.Load(key, tc.sc)
		if !ok {
			t.Fatalf("%s: stored entry did not load", tc.name)
		}
		if err := core.EqualInfo(want, got); err != nil {
			t.Fatalf("%s: loaded Info differs: %v", tc.name, err)
		}
		if dw, dg := infoDigest(want), infoDigest(got); dw != dg {
			t.Fatalf("%s: digest %s vs %s", tc.name, dw, dg)
		}
		if got.SCoP != tc.sc {
			t.Fatalf("%s: loaded Info not bound to the requesting SCoP", tc.name)
		}
	}
}

// TestDiskRebindAcrossInstances: an entry written from one SCoP
// instance loads into a second, separately built instance of the same
// content, bound to the second instance's statements.
func TestDiskRebindAcrossInstances(t *testing.T) {
	store, err := New(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	a := kernels.Listing3(16).SCoP
	b := kernels.Listing3(16).SCoP
	if a == b {
		t.Fatal("want two instances")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("instances should share content")
	}
	info, err := core.Detect(a, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	info.Freeze()
	store.Store(cache.KeyFor(a, core.Options{}), info)

	got, ok := store.Load(cache.KeyFor(b, core.Options{}), b)
	if !ok {
		t.Fatal("no load into second instance")
	}
	if got.SCoP != b {
		t.Fatal("loaded Info bound to the wrong instance")
	}
	for i, si := range got.Stmts {
		if si.Stmt != b.Stmts[i] {
			t.Fatalf("stmt %d not rebound to instance b", i)
		}
	}
	fresh, err := core.Detect(b, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.EqualInfo(fresh, got); err != nil {
		t.Fatalf("rebound Info differs from fresh detection: %v", err)
	}
	if infoDigest(fresh) != infoDigest(got) {
		t.Fatal("rebound Info digest differs from fresh detection")
	}
}

// TestDiskOptionVariantsCoexist: the same SCoP under different
// semantic options lands in distinct files and loads distinctly.
func TestDiskOptionVariantsCoexist(t *testing.T) {
	store, err := New(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sc := kernels.Listing3(16).SCoP
	plain, err := core.Detect(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := core.Detect(sc, core.Options{MinBlockIters: 4})
	if err != nil {
		t.Fatal(err)
	}
	store.Store(cache.KeyFor(sc, core.Options{}), plain.Freeze())
	store.Store(cache.KeyFor(sc, core.Options{MinBlockIters: 4}), coarse.Freeze())
	if store.Len() != 2 {
		t.Fatalf("store has %d entries, want 2", store.Len())
	}
	got, ok := store.Load(cache.KeyFor(sc, core.Options{MinBlockIters: 4}), sc)
	if !ok {
		t.Fatal("coarse entry did not load")
	}
	if err := core.EqualInfo(coarse, got); err != nil {
		t.Fatalf("coarse round trip: %v", err)
	}
}

// TestDiskCorruptEntryIsMiss: truncated or garbage files degrade to
// misses and count on cache.disk.errors.
func TestDiskCorruptEntryIsMiss(t *testing.T) {
	reg := obs.NewRegistry()
	store, err := New(t.TempDir(), reg)
	if err != nil {
		t.Fatal(err)
	}
	sc := kernels.Listing1(8).SCoP
	key := cache.KeyFor(sc, core.Options{})
	info, err := core.Detect(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	store.Store(key, info.Freeze())

	// Truncate the entry file mid-way.
	files, _ := filepath.Glob(filepath.Join(store.Dir(), "*.gob"))
	if len(files) != 1 {
		t.Fatalf("want 1 entry file, got %d", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Load(key, sc); ok {
		t.Fatal("corrupt entry loaded")
	}
	if got := reg.Snapshot().Counter("cache.disk.errors"); got == 0 {
		t.Fatal("corruption not counted on cache.disk.errors")
	}
}

// TestTieredCacheWarmsFromDisk: a fresh in-memory cache with the disk
// tier serves a previously stored SCoP without re-running Detect
// (cache.disk.hits goes up, and the result matches a fresh detection).
func TestTieredCacheWarmsFromDisk(t *testing.T) {
	dir := t.TempDir()
	reg1 := obs.NewRegistry()
	store1, err := New(dir, reg1)
	if err != nil {
		t.Fatal(err)
	}
	c1 := cache.New(0, reg1)
	c1.SetTier(store1)
	sc1 := kernels.Listing3(16).SCoP
	want, err := c1.Get(nil, sc1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if store1.Len() != 1 {
		t.Fatalf("write-through left %d entries, want 1", store1.Len())
	}

	// "Cold start": new registry, new memory cache, same directory.
	reg2 := obs.NewRegistry()
	store2, err := New(dir, reg2)
	if err != nil {
		t.Fatal(err)
	}
	c2 := cache.New(0, reg2)
	c2.SetTier(store2)
	sc2 := kernels.Listing3(16).SCoP // separate instance, same content
	got, err := c2.Get(nil, sc2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg2.Snapshot()
	if snap.Counter("cache.disk.hits") != 1 {
		t.Fatalf("cache.disk.hits = %d, want 1", snap.Counter("cache.disk.hits"))
	}
	if err := core.EqualInfo(want, got); err != nil {
		t.Fatalf("disk-warmed result differs: %v", err)
	}
	if infoDigest(want) != infoDigest(got) {
		t.Fatal("disk-warmed digest differs")
	}
	// Second request on the warmed process is a pure memory hit.
	if _, err := c2.Get(nil, sc2, core.Options{}); err != nil {
		t.Fatal(err)
	}
	snap = reg2.Snapshot()
	if snap.Counter("cache.hits") != 1 {
		t.Fatalf("cache.hits = %d, want 1", snap.Counter("cache.hits"))
	}
	if snap.Counter("cache.disk.hits") != 1 {
		t.Fatal("memory hit consulted the disk tier")
	}
}
