package disk

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scop"
)

// Store is the content-addressed on-disk tier. One cache key is one
// file named by the fingerprint and the semantic option bits; writes
// go through a temp file + rename so readers never observe a partial
// entry, and a corrupt or truncated file is treated as a miss (and
// counted on cache.disk.errors), never an outage.
//
// All methods are safe for concurrent use by any number of goroutines
// and processes sharing the directory: the in-memory cache's
// singleflight already collapses concurrent misses per process, and
// cross-process races at worst write the same content twice.
type Store struct {
	dir string

	hits    *obs.Counter
	misses  *obs.Counter
	writes  *obs.Counter
	errors  *obs.Counter
	bytesW  *obs.Counter
	loadNS  *obs.Histogram
	storeNS *obs.Histogram
}

// New opens (creating if needed) the store rooted at dir. Counters
// land on reg under the cache.disk.* names catalogued in
// docs/OBSERVABILITY.md; a nil reg wires them to a private registry.
func New(dir string, reg *obs.Registry) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("disk: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk: create store: %w", err)
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Store{
		dir:     dir,
		hits:    reg.Counter("cache.disk.hits"),
		misses:  reg.Counter("cache.disk.misses"),
		writes:  reg.Counter("cache.disk.writes"),
		errors:  reg.Counter("cache.disk.errors"),
		bytesW:  reg.Counter("cache.disk.bytes_written"),
		loadNS:  reg.Histogram("cache.disk.load_ns", nil),
		storeNS: reg.Histogram("cache.disk.store_ns", nil),
	}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path names the entry file for key: the fingerprint plus the
// semantic option bits, so option variants of one SCoP coexist.
func (s *Store) path(key cache.Key) string {
	pw, ow := 0, 0
	if key.PairwiseBlocks {
		pw = 1
	}
	if key.AllowOverwrites {
		ow = 1
	}
	return filepath.Join(s.dir, fmt.Sprintf("%s-m%d-p%d-o%d.gob", key.FP, key.MinBlockIters, pw, ow))
}

// Load reads the entry for key and rebinds it to sc, reporting a miss
// for absent, corrupt, version-skewed, or fingerprint-mismatched
// entries. A loaded Info is frozen and bit-identical to the Detect
// result it was stored from.
func (s *Store) Load(key cache.Key, sc *scop.SCoP) (*core.Info, bool) {
	start := time.Now()
	f, err := os.Open(s.path(key))
	if err != nil {
		s.misses.Inc()
		return nil, false
	}
	defer f.Close()
	var e encInfo
	if err := gob.NewDecoder(f).Decode(&e); err != nil {
		s.errors.Inc()
		s.misses.Inc()
		return nil, false
	}
	if e.Fingerprint != key.FP.String() || e.Fingerprint != sc.Fingerprint().String() {
		// A hash-named file can only mismatch through corruption or a
		// colliding rename; never bind it to the wrong program.
		s.errors.Inc()
		s.misses.Inc()
		return nil, false
	}
	info, err := decode(&e, sc)
	if err != nil {
		s.errors.Inc()
		s.misses.Inc()
		return nil, false
	}
	s.hits.Inc()
	s.loadNS.Observe(time.Since(start).Nanoseconds())
	return info, true
}

// Store persists info under key via temp-file + atomic rename. Errors
// are counted and swallowed: the disk tier is an accelerator, never a
// correctness dependency.
func (s *Store) Store(key cache.Key, info *core.Info) {
	start := time.Now()
	e, err := encode(info)
	if err != nil {
		s.errors.Inc()
		return
	}
	tmp, err := os.CreateTemp(s.dir, "entry-*.tmp")
	if err != nil {
		s.errors.Inc()
		return
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	cw := &countingWriter{w: tmp}
	if err := gob.NewEncoder(cw).Encode(e); err != nil {
		tmp.Close()
		s.errors.Inc()
		return
	}
	if err := tmp.Close(); err != nil {
		s.errors.Inc()
		return
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		s.errors.Inc()
		return
	}
	s.writes.Inc()
	s.bytesW.Add(cw.n)
	s.storeNS.Observe(time.Since(start).Nanoseconds())
}

// Len counts the entries currently on disk.
func (s *Store) Len() int {
	matches, err := filepath.Glob(filepath.Join(s.dir, "*.gob"))
	if err != nil {
		return 0
	}
	return len(matches)
}

type countingWriter struct {
	w interface{ Write([]byte) (int, error) }
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
