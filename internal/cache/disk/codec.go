// Package disk is the durable second tier of the detection cache: a
// content-addressed store mapping cache keys (SCoP fingerprint +
// semantic detection options) to gob-encoded frozen *core.Info, so a
// cold process warms from results a previous process — or a previous
// run of this one — already paid ~ms of Algorithm 1 for. It implements
// cache.Tier; wire it behind the in-memory LRU with
// polypipe.WithDiskCache or cache.SetTier.
//
// The encoding is explicit enumeration: every relation (pair T/V/Y
// maps, integrated E maps, in-dependency relations, and the dependence
// graph's flow/intra relations) is stored as its space names plus the
// sorted pair list the columnar backend enumerates. Decoding rebuilds
// the maps through the same NewMap/Add path Detect uses and rebinds
// statements into the requesting SCoP by index, so a loaded Info is
// bit-identical to a freshly detected one (the round-trip test proves
// it digest-for-digest) and independent of which isl backend wrote it.
package disk

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/isl"
	"repro/internal/scop"
)

// codecVersion gates the file format; a reader finding another version
// treats the entry as a miss (the store rewrites it on the next
// detection).
const codecVersion = 1

// encMap is one enumerated relation: its tuple spaces and the pair
// list in enumeration order.
type encMap struct {
	InName  string
	InDim   int
	OutName string
	OutDim  int
	Ins     []isl.Vec
	Outs    []isl.Vec
}

// encPair is one pipeline pair, statements by index.
type encPair struct {
	Src, Dst int
	T, V, Y  encMap
}

// encBlock is one materialized block.
type encBlock struct {
	Leader  isl.Vec
	Members []isl.Vec
}

// encInDep is one block-level in-dependency family.
type encInDep struct {
	Src int
	Rel encMap
}

// encStmt is the per-statement result.
type encStmt struct {
	Index  int
	E      encMap
	Blocks []encBlock
	InDeps []encInDep
}

// encGraph carries the dependence graph's relations. Flow is sparse
// (only non-nil cells); Intra is indexed by statement.
type encGraph struct {
	Stmts int
	Flow  []encFlowCell
	Intra []encMap
}

type encFlowCell struct {
	Src, Dst int
	Rel      encMap
}

// encInfo is the on-disk form of one frozen detection result.
type encInfo struct {
	Version int
	// Fingerprint pins the SCoP content the entry was detected from;
	// Load cross-checks it against the requesting SCoP so a hash-named
	// file can never bind to the wrong program.
	Fingerprint string
	Pairs       []encPair
	Stmts       []encStmt
	Graph       encGraph
}

func encodeMap(m *isl.Map) encMap {
	in, out := m.InSpace(), m.OutSpace()
	e := encMap{InName: in.Name, InDim: in.Dim, OutName: out.Name, OutDim: out.Dim}
	m.Foreach(func(i, o isl.Vec) bool {
		e.Ins = append(e.Ins, i.Clone())
		e.Outs = append(e.Outs, o.Clone())
		return true
	})
	return e
}

func decodeMap(e encMap) (*isl.Map, error) {
	if len(e.Ins) != len(e.Outs) {
		return nil, fmt.Errorf("disk: relation %s->%s has %d ins but %d outs",
			e.InName, e.OutName, len(e.Ins), len(e.Outs))
	}
	m := isl.NewMap(isl.NewSpace(e.InName, e.InDim), isl.NewSpace(e.OutName, e.OutDim))
	for i := range e.Ins {
		m.Add(e.Ins[i], e.Outs[i])
	}
	return m, nil
}

// encode flattens a frozen Info for storage. The SCoP itself is not
// stored — the fingerprint addresses it, and Load rebinds into the
// requester's instance.
func encode(info *core.Info) (*encInfo, error) {
	out := &encInfo{Version: codecVersion, Fingerprint: info.SCoP.Fingerprint().String()}
	for _, p := range info.Pairs {
		out.Pairs = append(out.Pairs, encPair{
			Src: p.Src.Index, Dst: p.Dst.Index,
			T: encodeMap(p.T), V: encodeMap(p.V), Y: encodeMap(p.Y),
		})
	}
	for _, si := range info.Stmts {
		if si == nil {
			return nil, fmt.Errorf("disk: statement slot without StmtInfo")
		}
		es := encStmt{Index: si.Stmt.Index, E: encodeMap(si.E)}
		for _, b := range si.Blocks {
			eb := encBlock{Leader: b.Leader.Clone()}
			for _, m := range b.Members {
				eb.Members = append(eb.Members, m.Clone())
			}
			es.Blocks = append(es.Blocks, eb)
		}
		for _, d := range si.InDeps {
			es.InDeps = append(es.InDeps, encInDep{Src: d.Src.Index, Rel: encodeMap(d.Rel)})
		}
		out.Stmts = append(out.Stmts, es)
	}
	if info.Graph != nil {
		flow, intra := info.Graph.Relations()
		out.Graph.Stmts = len(flow)
		for i, row := range flow {
			for j, m := range row {
				if m != nil {
					out.Graph.Flow = append(out.Graph.Flow, encFlowCell{Src: i, Dst: j, Rel: encodeMap(m)})
				}
			}
		}
		for _, m := range intra {
			var em encMap
			if m != nil {
				em = encodeMap(m)
			}
			out.Graph.Intra = append(out.Graph.Intra, em)
		}
	}
	return out, nil
}

// decode rebuilds a detection result bound to sc. The caller owns the
// fingerprint check; decode validates only structure.
func decode(e *encInfo, sc *scop.SCoP) (*core.Info, error) {
	if e.Version != codecVersion {
		return nil, fmt.Errorf("disk: entry version %d, want %d", e.Version, codecVersion)
	}
	stmtAt := func(i int) (*scop.Statement, error) {
		if i < 0 || i >= len(sc.Stmts) {
			return nil, fmt.Errorf("disk: statement index %d out of range (%d statements)", i, len(sc.Stmts))
		}
		return sc.Stmts[i], nil
	}
	info := &core.Info{SCoP: sc}
	for _, p := range e.Pairs {
		src, err := stmtAt(p.Src)
		if err != nil {
			return nil, err
		}
		dst, err := stmtAt(p.Dst)
		if err != nil {
			return nil, err
		}
		t, err := decodeMap(p.T)
		if err != nil {
			return nil, err
		}
		v, err := decodeMap(p.V)
		if err != nil {
			return nil, err
		}
		y, err := decodeMap(p.Y)
		if err != nil {
			return nil, err
		}
		info.Pairs = append(info.Pairs, core.PipelinePair{Src: src, Dst: dst, T: t, V: v, Y: y})
	}
	if len(e.Stmts) != len(sc.Stmts) {
		return nil, fmt.Errorf("disk: entry has %d statements, scop has %d", len(e.Stmts), len(sc.Stmts))
	}
	info.Stmts = make([]*core.StmtInfo, len(sc.Stmts))
	for _, es := range e.Stmts {
		st, err := stmtAt(es.Index)
		if err != nil {
			return nil, err
		}
		em, err := decodeMap(es.E)
		if err != nil {
			return nil, err
		}
		blocks := make([]core.Block, len(es.Blocks))
		for i, b := range es.Blocks {
			blocks[i] = core.Block{Leader: b.Leader, Members: b.Members}
		}
		var inDeps []core.InDep
		for _, d := range es.InDeps {
			dsrc, err := stmtAt(d.Src)
			if err != nil {
				return nil, err
			}
			rel, err := decodeMap(d.Rel)
			if err != nil {
				return nil, err
			}
			inDeps = append(inDeps, core.InDep{Src: dsrc, Rel: rel})
		}
		info.Stmts[es.Index] = core.NewStmtInfo(st, em, blocks, inDeps)
	}
	if e.Graph.Stmts != len(sc.Stmts) {
		return nil, fmt.Errorf("disk: entry graph has %d statements, scop has %d", e.Graph.Stmts, len(sc.Stmts))
	}
	flow := make([][]*isl.Map, len(sc.Stmts))
	for i := range flow {
		flow[i] = make([]*isl.Map, len(sc.Stmts))
	}
	for _, cell := range e.Graph.Flow {
		if _, err := stmtAt(cell.Src); err != nil {
			return nil, err
		}
		if _, err := stmtAt(cell.Dst); err != nil {
			return nil, err
		}
		m, err := decodeMap(cell.Rel)
		if err != nil {
			return nil, err
		}
		flow[cell.Src][cell.Dst] = m
	}
	if len(e.Graph.Intra) != len(sc.Stmts) {
		return nil, fmt.Errorf("disk: entry has %d intra relations, scop has %d", len(e.Graph.Intra), len(sc.Stmts))
	}
	intra := make([]*isl.Map, len(sc.Stmts))
	for i, em := range e.Graph.Intra {
		if em.InDim == 0 && em.InName == "" {
			continue // statement had a nil intra relation
		}
		m, err := decodeMap(em)
		if err != nil {
			return nil, err
		}
		intra[i] = m
	}
	g, err := deps.RebuildGraph(sc, flow, intra)
	if err != nil {
		return nil, err
	}
	info.Graph = g
	info.Freeze()
	return info, nil
}
