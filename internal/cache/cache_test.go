package cache

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fuzzscop"
	"repro/internal/isl/aff"
	"repro/internal/obs"
	"repro/internal/scop"
)

// buildChain constructs a fresh producer/consumer SCoP instance; n
// parametrizes its content so different n means a different
// fingerprint, while equal n rebuilds identical content under new
// pointers (the rebinding case).
func buildChain(t testing.TB, n int) *scop.SCoP {
	t.Helper()
	b := scop.NewBuilder("chain")
	b.Array("A", 1).Array("B", 1)
	b.Stmt("S", aff.RectDomain("S", n)).Writes("A", aff.Var(1, 0))
	b.Stmt("T", aff.RectDomain("T", n)).
		Writes("B", aff.Var(1, 0)).
		Reads("A", aff.Var(1, 0))
	return b.MustBuild()
}

// TestGetBitIdenticalToDetect is the core property: serving through
// the cache — cold, hot on the same instance, and hot on a separately
// built instance — yields results structurally identical to a direct
// Detect.
func TestGetBitIdenticalToDetect(t *testing.T) {
	for _, sc := range []*scop.SCoP{buildChain(t, 16), fuzzscop.Stress()} {
		want, err := core.Detect(sc, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		c := New(0, nil)
		cold, err := c.Get(context.Background(), sc, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := core.EqualInfo(want, cold); err != nil {
			t.Fatalf("cold result differs from Detect: %v", err)
		}
		hot, err := c.Get(context.Background(), sc, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if hot != cold {
			t.Fatal("hot hit on the same instance should return the cached Info unchanged")
		}
	}
}

// TestRebindAcrossInstances: a hit from a separately built SCoP with
// the same content serves the shared frozen maps but the caller's own
// statements.
func TestRebindAcrossInstances(t *testing.T) {
	first, second := buildChain(t, 12), buildChain(t, 12)
	c := New(0, nil)
	a, err := c.Get(context.Background(), first, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Get(context.Background(), second, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want one miss then one hit", st)
	}
	if err := core.EqualInfo(a, b); err != nil {
		t.Fatalf("rebound result differs: %v", err)
	}
	if b.SCoP != second {
		t.Fatal("rebound Info does not reference the caller's SCoP")
	}
	for i, si := range b.Stmts {
		if si.Stmt != second.Stmts[i] {
			t.Fatalf("stmt %d not rebound to the caller's statement", i)
		}
	}
	for _, p := range b.Pairs {
		if p.Src != second.Stmts[p.Src.Index] || p.Dst != second.Stmts[p.Dst.Index] {
			t.Fatal("pair endpoints not rebound")
		}
	}
	for _, si := range b.Stmts {
		for _, d := range si.InDeps {
			if d.Src != second.Stmts[d.Src.Index] {
				t.Fatal("in-dep source not rebound")
			}
		}
	}
	// The expensive structures are shared, not recomputed.
	if b.Stmts[0].E != a.Stmts[0].E || b.Graph != a.Graph {
		t.Fatal("rebound view should share the frozen maps and graph")
	}
}

// TestOptionsPartitionTheCache: semantic options address distinct
// entries; Workers and the MinBlockIters identity range do not.
func TestOptionsPartitionTheCache(t *testing.T) {
	sc := buildChain(t, 8)
	base := KeyFor(sc, core.Options{})
	if KeyFor(sc, core.Options{Workers: 8, MinBlockIters: 1}) != base {
		t.Fatal("Workers / identity MinBlockIters must not move the key")
	}
	for name, opts := range map[string]core.Options{
		"MinBlockIters":   {MinBlockIters: 4},
		"PairwiseBlocks":  {PairwiseBlocks: true},
		"AllowOverwrites": {AllowOverwrites: true},
	} {
		if KeyFor(sc, opts) == base {
			t.Errorf("%s ignored by the cache key", name)
		}
	}
	if KeyFor(buildChain(t, 9), core.Options{}) == base {
		t.Fatal("content change ignored by the cache key")
	}
}

// TestEvictionUnderPressure: a bounded cache under a working set
// larger than its capacity evicts cold entries, stays within its
// bound, and keeps serving correct results for evicted keys.
func TestEvictionUnderPressure(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(8, reg) // one entry per shard
	ctx := context.Background()
	const distinct = 40
	for i := 0; i < distinct; i++ {
		if _, err := c.Get(ctx, buildChain(t, 4+i), core.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n > 8 {
		t.Fatalf("cache holds %d entries, bound is 8", n)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions under pressure")
	}
	if st.Entries != int64(c.Len()) {
		t.Fatalf("entries gauge %d vs actual %d", st.Entries, c.Len())
	}
	if st.Evictions+st.Entries != int64(distinct) {
		t.Fatalf("evictions %d + resident %d != %d inserted", st.Evictions, st.Entries, distinct)
	}
	// An evicted key is simply a miss again — and still correct.
	sc := buildChain(t, 4)
	want, err := core.Detect(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(ctx, sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.EqualInfo(want, got); err != nil {
		t.Fatalf("post-eviction refill differs: %v", err)
	}
}

// TestCanceledContext: a done ctx short-circuits Get and marks every
// unserved batch item; resident hits are still served by the batch's
// hit pass.
func TestCanceledContext(t *testing.T) {
	c := New(0, nil)
	warm := buildChain(t, 6)
	if _, err := c.Get(context.Background(), warm, core.Options{}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Get(ctx, buildChain(t, 7), core.Options{}); err != context.Canceled {
		t.Fatalf("Get on canceled ctx: err = %v", err)
	}
	infos, errs := c.GetBatch(ctx, []*scop.SCoP{warm, buildChain(t, 9), buildChain(t, 10)}, core.Options{})
	if errs[0] != nil || infos[0] == nil {
		t.Fatalf("resident hit should survive cancellation: info=%v err=%v", infos[0], errs[0])
	}
	for i := 1; i < 3; i++ {
		if errs[i] != context.Canceled || infos[i] != nil {
			t.Fatalf("item %d: info=%v err=%v, want canceled", i, infos[i], errs[i])
		}
	}
}

// TestErrorsAreNotCached: a rejected SCoP propagates its error and
// leaves no entry behind.
func TestErrorsAreNotCached(t *testing.T) {
	b := scop.NewBuilder("ow")
	b.Array("A", 1).Array("B", 1)
	b.Stmt("S", aff.RectDomain("S", 4)).WritesOverwriting("A", aff.Linear(0, 0))
	b.Stmt("T", aff.RectDomain("T", 4)).
		Writes("B", aff.Var(1, 0)).
		Reads("A", aff.Var(1, 0))
	sc := b.MustBuild()
	c := New(0, nil)
	if _, err := c.Get(context.Background(), sc, core.Options{}); err == nil {
		t.Fatal("overwriting SCoP accepted without AllowOverwrites")
	}
	if c.Len() != 0 {
		t.Fatal("failed detection left a cache entry")
	}
	// The relaxed options accept it — under a different key.
	if _, err := c.Get(context.Background(), sc, core.Options{AllowOverwrites: true}); err != nil {
		t.Fatal(err)
	}
}

// TestSingleflightSharesOneDetection: concurrent misses for one key
// collapse onto a single Detect; every caller gets the same frozen
// Info pointer (same instance ⇒ no rebinding).
func TestSingleflightSharesOneDetection(t *testing.T) {
	c := New(0, nil)
	sc := fuzzscop.Stress()
	const callers = 16
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
		mu    sync.Mutex
		seen  = map[*core.Info]bool{}
	)
	start.Add(1)
	done.Add(callers)
	for i := 0; i < callers; i++ {
		go func() {
			defer done.Done()
			start.Wait()
			info, err := c.Get(context.Background(), sc, core.Options{})
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			seen[info] = true
			mu.Unlock()
		}()
	}
	start.Done()
	done.Wait()
	if len(seen) != 1 {
		t.Fatalf("%d distinct Info values served for one key, want 1", len(seen))
	}
	st := c.Stats()
	if st.Hits+st.Misses != callers {
		t.Fatalf("hits %d + misses %d != %d callers", st.Hits, st.Misses, callers)
	}
	if got := st.Misses - st.InflightDedup; got != 1 {
		t.Fatalf("detections led = %d (misses %d, dedup %d), want exactly 1", got, st.Misses, st.InflightDedup)
	}
}
