package schedtree

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/isl"
	"repro/internal/kernels"
)

func detect(t *testing.T, n int) *core.Info {
	t.Helper()
	info, err := core.Detect(kernels.Listing3(n).SCoP, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestBuildShape(t *testing.T) {
	info := detect(t, 12)
	tree := Build(info)
	if len(tree.Children) != 3 {
		t.Fatalf("sequence children = %d, want 3", len(tree.Children))
	}
	// Each per-statement subtree: domain -> band -> expansion ->
	// domain -> mark -> band -> leaf.
	for i, c := range tree.Children {
		dom, ok := c.(*DomainNode)
		if !ok {
			t.Fatalf("child %d: %s, want domain", i, c.Kind())
		}
		band, ok := dom.Child.(*BandNode)
		if !ok {
			t.Fatalf("child %d: %s under domain, want band", i, dom.Child.Kind())
		}
		exp, ok := band.Child.(*ExpansionNode)
		if !ok {
			t.Fatalf("child %d: %s under band, want expansion", i, band.Child.Kind())
		}
		innerDom, ok := exp.Child.(*DomainNode)
		if !ok {
			t.Fatalf("child %d: %s under expansion, want domain", i, exp.Child.Kind())
		}
		mark, ok := innerDom.Child.(*MarkNode)
		if !ok {
			t.Fatalf("child %d: %s under inner domain, want mark", i, innerDom.Child.Kind())
		}
		if mark.Name != MarkName || mark.Task == nil {
			t.Fatalf("child %d: mark = %q task=%v", i, mark.Name, mark.Task)
		}
		innerBand, ok := mark.Child.(*BandNode)
		if !ok {
			t.Fatalf("child %d: %s under mark, want band", i, mark.Child.Kind())
		}
		if _, ok := innerBand.Child.(*LeafNode); !ok {
			t.Fatalf("child %d: %s under inner band, want leaf", i, innerBand.Child.Kind())
		}
		// The outer domain is the leaders, the inner the full domain.
		st := info.Stmts[i]
		if !dom.Set.Equal(st.E.Range()) {
			t.Errorf("child %d: outer domain is not Range(E)", i)
		}
		if !innerDom.Set.Equal(st.Stmt.Domain) {
			t.Errorf("child %d: inner domain is not the statement domain", i)
		}
		if !exp.Contraction.Equal(st.E) {
			t.Errorf("child %d: contraction differs from E", i)
		}
		if !mark.Task.Out.Equal(isl.Identity(st.E.Range())) {
			t.Errorf("child %d: out-dependency is not identity on Range(E)", i)
		}
	}
}

func TestFlattenMatchesDetectedBlocks(t *testing.T) {
	info := detect(t, 16)
	tasks := Flatten(Build(info))

	want := 0
	for _, si := range info.Stmts {
		want += len(si.Blocks)
	}
	if len(tasks) != want {
		t.Fatalf("tasks = %d, want %d", len(tasks), want)
	}

	// Tasks appear statement by statement (sequence order), blocks in
	// leader order, members in lexicographic order, and agree exactly
	// with the detection-phase blocks.
	idx := 0
	for _, si := range info.Stmts {
		for _, blk := range si.Blocks {
			task := tasks[idx]
			idx++
			if task.Task.Stmt != si.Stmt {
				t.Fatalf("task %d: stmt %s, want %s", idx-1, task.Task.Stmt.Name, si.Stmt.Name)
			}
			if !task.Leader.Eq(blk.Leader) {
				t.Fatalf("task %d: leader %v, want %v", idx-1, task.Leader, blk.Leader)
			}
			if len(task.Members) != len(blk.Members) {
				t.Fatalf("task %d: members %d, want %d", idx-1, len(task.Members), len(blk.Members))
			}
			for k := range blk.Members {
				if !task.Members[k].Eq(blk.Members[k]) {
					t.Fatalf("task %d member %d: %v, want %v", idx-1, k, task.Members[k], blk.Members[k])
				}
			}
		}
	}
}

func TestFlattenCoversEveryIteration(t *testing.T) {
	info := detect(t, 12)
	tasks := Flatten(Build(info))
	seen := make(map[string]map[string]bool)
	for _, task := range tasks {
		name := task.Task.Stmt.Name
		if seen[name] == nil {
			seen[name] = make(map[string]bool)
		}
		for _, m := range task.Members {
			k := m.String()
			if seen[name][k] {
				t.Fatalf("iteration %s%v scheduled twice", name, m)
			}
			seen[name][k] = true
		}
	}
	for _, si := range info.Stmts {
		if got := len(seen[si.Stmt.Name]); got != si.Stmt.Domain.Card() {
			t.Errorf("%s: %d iterations scheduled, want %d", si.Stmt.Name, got, si.Stmt.Domain.Card())
		}
	}
}

func TestWalkAndCount(t *testing.T) {
	info := detect(t, 12)
	tree := Build(info)
	counts := Count(tree)
	want := map[string]int{
		"sequence":  1,
		"domain":    6, // outer + inner per statement
		"band":      6,
		"expansion": 3,
		"mark":      3,
		"leaf":      3,
	}
	for kind, n := range want {
		if counts[kind] != n {
			t.Errorf("%s nodes = %d, want %d (all: %v)", kind, counts[kind], n, counts)
		}
	}
	// Early stop: visiting stops after the first node.
	visited := 0
	Walk(tree, func(Node) bool {
		visited++
		return false
	})
	if visited != 1 {
		t.Fatalf("early-stop visited %d nodes", visited)
	}
	Walk(nil, func(Node) bool { t.Fatal("visited nil"); return true })
}

func TestValidateRejectsMoreMutations(t *testing.T) {
	mutate := func(t *testing.T, f func(*SequenceNode)) {
		t.Helper()
		tree := Build(detect(t, 12))
		f(tree)
		if err := Validate(tree); err == nil {
			t.Error("mutated tree accepted")
		}
	}
	// Outer band schedule over the wrong set.
	mutate(t, func(tree *SequenceNode) {
		outer := tree.Children[0].(*DomainNode)
		band := outer.Child.(*BandNode)
		other := detect(t, 16)
		band.Schedule = isl.Identity(other.Stmts[0].E.Range())
	})
	// Expansion replaced by a leaf.
	mutate(t, func(tree *SequenceNode) {
		outer := tree.Children[0].(*DomainNode)
		outer.Child.(*BandNode).Child = &LeafNode{}
	})
	// Mark with a nil task.
	mutate(t, func(tree *SequenceNode) {
		outer := tree.Children[0].(*DomainNode)
		exp := outer.Child.(*BandNode).Child.(*ExpansionNode)
		exp.Child.(*DomainNode).Child.(*MarkNode).Task = nil
	})
	// Wrong out-dependency on the annotation.
	mutate(t, func(tree *SequenceNode) {
		outer := tree.Children[0].(*DomainNode)
		exp := outer.Child.(*BandNode).Child.(*ExpansionNode)
		mark := exp.Child.(*DomainNode).Child.(*MarkNode)
		mark.Task.Out = isl.Identity(mark.Task.Stmt.Domain)
	})
	// Inner band missing.
	mutate(t, func(tree *SequenceNode) {
		outer := tree.Children[0].(*DomainNode)
		exp := outer.Child.(*BandNode).Child.(*ExpansionNode)
		exp.Child.(*DomainNode).Child.(*MarkNode).Child = &LeafNode{}
	})
	// Domain under outer domain instead of band.
	mutate(t, func(tree *SequenceNode) {
		outer := tree.Children[0].(*DomainNode)
		outer.Child = &DomainNode{Set: outer.Set, Child: &LeafNode{}}
	})
}

func TestValidateAcceptsBuiltTrees(t *testing.T) {
	for _, n := range []int{8, 12, 20} {
		info := detect(t, n)
		if err := Validate(Build(info)); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestValidateRejectsBrokenTrees(t *testing.T) {
	info := detect(t, 12)

	// Missing mark.
	tree := Build(info)
	outer := tree.Children[0].(*DomainNode)
	exp := outer.Child.(*BandNode).Child.(*ExpansionNode)
	inner := exp.Child.(*DomainNode)
	savedMark := inner.Child
	inner.Child = &LeafNode{}
	if err := Validate(tree); err == nil {
		t.Error("missing mark accepted")
	}
	inner.Child = savedMark

	// Wrong contraction.
	saved := exp.Contraction
	other := detect(t, 16)
	exp.Contraction = other.Stmts[0].E
	if err := Validate(tree); err == nil {
		t.Error("foreign contraction accepted")
	}
	exp.Contraction = saved

	// Non-domain root of a subtree.
	bad := &SequenceNode{Children: []Node{&LeafNode{}}}
	if err := Validate(bad); err == nil {
		t.Error("leaf subtree accepted")
	}
	if err := Validate(tree); err != nil {
		t.Errorf("restored tree rejected: %v", err)
	}
}

func TestStringRendering(t *testing.T) {
	info := detect(t, 12)
	out := String(Build(info))
	for _, want := range []string{"sequence:", "expansion:", "mark: \"pipeline_task\"", "stmt=U", "in-deps=[S, R]", "leaf"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q in:\n%s", want, out)
		}
	}
}

func TestFlattenUnknownNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	type bogus struct{ LeafNode }
	Flatten(&SequenceNode{Children: []Node{&bogus{}}})
}
