// Package schedtree implements the schedule-tree representation used
// by the transformation phase (§5.2): domain, band, sequence, mark,
// and expansion nodes, mirroring the ISL schedule-tree node types the
// paper manipulates, plus Algorithm 2, which rebuilds each statement's
// schedule so that loops iterating over pipeline blocks are separated
// from loops iterating inside blocks, with a mark node carrying the
// block dependency information.
package schedtree

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/isl"
	"repro/internal/scop"
)

// Node is one schedule-tree node.
type Node interface {
	// Kind returns the node-type name ("domain", "band", ...).
	Kind() string
	// children returns the ordered children.
	children() []Node
}

// DomainNode introduces the set of points scheduled by its subtree.
type DomainNode struct {
	Set   *isl.Set
	Child Node
}

// BandNode schedules its domain by a partial schedule; this
// implementation uses identity partial schedules (lexicographic order
// over the active domain), which is all Algorithm 2 requires.
type BandNode struct {
	// Schedule is the partial schedule as a map from the active
	// domain to itself (identity over the band's points).
	Schedule *isl.Map
	Child    Node
}

// SequenceNode runs its children one after another.
type SequenceNode struct {
	Children []Node
}

// MarkNode attaches an annotation to its subtree. Algorithm 2 places a
// mark carrying the task dependency information (the pw_multi_aff
// structures of §5.2) immediately above the intra-block band, so code
// generation can locate the pipeline loop.
type MarkNode struct {
	Name  string
	Task  *TaskAnnotation
	Child Node
}

// ExpansionNode expands each scheduled point of the outer tree into
// the set of points contracting to it: Contraction maps inner (full
// iteration) points to outer (block leader) points, exactly the E_S
// map of the detection phase.
type ExpansionNode struct {
	Contraction *isl.Map
	Child       Node
}

// LeafNode terminates a branch.
type LeafNode struct{}

func (n *DomainNode) Kind() string    { return "domain" }
func (n *BandNode) Kind() string      { return "band" }
func (n *SequenceNode) Kind() string  { return "sequence" }
func (n *MarkNode) Kind() string      { return "mark" }
func (n *ExpansionNode) Kind() string { return "expansion" }
func (n *LeafNode) Kind() string      { return "leaf" }

func (n *DomainNode) children() []Node    { return []Node{n.Child} }
func (n *BandNode) children() []Node      { return []Node{n.Child} }
func (n *SequenceNode) children() []Node  { return n.Children }
func (n *MarkNode) children() []Node      { return []Node{n.Child} }
func (n *ExpansionNode) children() []Node { return []Node{n.Child} }
func (n *LeafNode) children() []Node      { return nil }

// TaskAnnotation is the payload of the pipeline mark node: everything
// code generation needs to create one task per pipeline-loop iteration
// (§5.2's mark built from the Q_S pw_multi_aff_list and the Q'_S
// pw_multi_aff).
type TaskAnnotation struct {
	Stmt   *scop.Statement
	E      *isl.Map     // contraction / blocking map of the statement
	InDeps []core.InDep // Q_S: block leader -> required source block leader
	Out    *isl.Map     // Q'_S: identity on Range(E)
}

// MarkName is the name of the mark node Algorithm 2 inserts.
const MarkName = "pipeline_task"

// Build implements Algorithm 2: for every statement S it creates
//
//	domain(Range(E_S)) → band(identity) → expansion(E_S) →
//	  domain(Domain(E_S)) → mark(task info) → band(identity) → leaf
//
// and sequences the per-statement trees in program order.
func Build(info *core.Info) *SequenceNode {
	seq := &SequenceNode{}
	for _, si := range info.Stmts {
		re := si.E.Range()
		de := si.E.Domain()

		inner := &DomainNode{
			Set: de,
			Child: &MarkNode{
				Name: MarkName,
				Task: &TaskAnnotation{
					Stmt:   si.Stmt,
					E:      si.E,
					InDeps: si.InDeps,
					Out:    isl.Identity(re),
				},
				Child: &BandNode{
					Schedule: isl.Identity(de),
					Child:    &LeafNode{},
				},
			},
		}
		outer := &DomainNode{
			Set: re,
			Child: &BandNode{
				Schedule: isl.Identity(re),
				Child: &ExpansionNode{
					Contraction: si.E,
					Child:       inner,
				},
			},
		}
		seq.Children = append(seq.Children, outer)
	}
	return seq
}

// TaskInstance is one scheduled task: a block of one statement with
// its members in execution order.
type TaskInstance struct {
	Task    *TaskAnnotation
	Leader  isl.Vec
	Members []isl.Vec
}

// Flatten evaluates the schedule tree into the totally ordered list of
// task instances it denotes. Band nodes order points lexicographically
// (identity partial schedules); expansion nodes replace each block
// leader with its member iterations; the mark node identifies the task
// boundary.
func Flatten(root Node) []TaskInstance {
	var out []TaskInstance
	flatten(root, nil, &out)
	return out
}

// flatten walks the tree. active is the current point filter: when
// inside an expansion, it restricts the inner domain to one block.
func flatten(n Node, active *isl.Set, out *[]TaskInstance) {
	switch node := n.(type) {
	case *SequenceNode:
		for _, c := range node.Children {
			flatten(c, active, out)
		}
	case *DomainNode:
		set := node.Set
		if active != nil {
			set = set.Intersect(active)
		}
		flatten(node.Child, set, out)
	case *BandNode:
		// Identity band: points already ordered lexicographically by
		// Set.Elements; expansion below decides per-point behaviour.
		flatten(node.Child, active, out)
	case *ExpansionNode:
		if active == nil {
			panic("schedtree: expansion node with no active domain")
		}
		inv := node.Contraction.Inverse()
		for _, leader := range active.Elements() {
			members := isl.NewSet(node.Contraction.InSpace())
			for _, m := range inv.Lookup(leader) {
				members.Add(m)
			}
			flatten(node.Child, members, out)
		}
	case *MarkNode:
		if node.Task != nil {
			if active == nil || active.IsEmpty() {
				return
			}
			leader, _ := active.Lexmax()
			*out = append(*out, TaskInstance{
				Task:    node.Task,
				Leader:  leader,
				Members: active.Elements(),
			})
			return // the band below is subsumed by Members ordering
		}
		flatten(node.Child, active, out)
	case *LeafNode:
	default:
		panic(fmt.Sprintf("schedtree: unknown node %T", n))
	}
}

// Walk visits every node of the tree depth-first, parents before
// children, stopping early when fn returns false.
func Walk(root Node, fn func(Node) bool) {
	if root == nil || !fn(root) {
		return
	}
	for _, c := range root.children() {
		Walk(c, fn)
	}
}

// Count returns the number of nodes of each kind in the tree.
func Count(root Node) map[string]int {
	counts := map[string]int{}
	Walk(root, func(n Node) bool {
		counts[n.Kind()]++
		return true
	})
	return counts
}

// NumNodes returns the total node count of the tree (the
// "sched.tree_nodes" metric of the observability layer).
func NumNodes(root Node) int {
	n := 0
	Walk(root, func(Node) bool {
		n++
		return true
	})
	return n
}

// Validate checks the structural invariants of a transformed schedule
// tree: every sequence child is a per-statement subtree of the exact
// Algorithm 2 shape, the outer domain equals the contraction's range,
// the inner domain equals its domain, band schedules are identities
// over their domains, and the mark node carries a complete task
// annotation whose out-dependency is the identity on the block
// leaders.
func Validate(root *SequenceNode) error {
	for i, child := range root.Children {
		if err := validateStmtTree(child); err != nil {
			return fmt.Errorf("schedtree: subtree %d: %w", i, err)
		}
	}
	return nil
}

func validateStmtTree(n Node) error {
	outerDom, ok := n.(*DomainNode)
	if !ok {
		return fmt.Errorf("root is %s, want domain", n.Kind())
	}
	outerBand, ok := outerDom.Child.(*BandNode)
	if !ok {
		return fmt.Errorf("under outer domain: %s, want band", outerDom.Child.Kind())
	}
	if !outerBand.Schedule.Domain().Equal(outerDom.Set) {
		return fmt.Errorf("outer band schedule domain differs from the domain node")
	}
	exp, ok := outerBand.Child.(*ExpansionNode)
	if !ok {
		return fmt.Errorf("under outer band: %s, want expansion", outerBand.Child.Kind())
	}
	if !exp.Contraction.Range().Equal(outerDom.Set) {
		return fmt.Errorf("contraction range differs from the outer domain")
	}
	innerDom, ok := exp.Child.(*DomainNode)
	if !ok {
		return fmt.Errorf("under expansion: %s, want domain", exp.Child.Kind())
	}
	if !exp.Contraction.Domain().Equal(innerDom.Set) {
		return fmt.Errorf("contraction domain differs from the inner domain")
	}
	mark, ok := innerDom.Child.(*MarkNode)
	if !ok || mark.Name != MarkName {
		return fmt.Errorf("under inner domain: no %q mark", MarkName)
	}
	if mark.Task == nil || mark.Task.Stmt == nil {
		return fmt.Errorf("mark has no task annotation")
	}
	if !mark.Task.E.Equal(exp.Contraction) {
		return fmt.Errorf("annotation blocking map differs from the contraction")
	}
	if !mark.Task.Out.Equal(isl.Identity(exp.Contraction.Range())) {
		return fmt.Errorf("out-dependency is not the identity on the block leaders")
	}
	innerBand, ok := mark.Child.(*BandNode)
	if !ok {
		return fmt.Errorf("under mark: %s, want band", mark.Child.Kind())
	}
	if !innerBand.Schedule.Domain().Equal(innerDom.Set) {
		return fmt.Errorf("inner band schedule domain differs from the statement domain")
	}
	if _, ok := innerBand.Child.(*LeafNode); !ok {
		return fmt.Errorf("under inner band: %s, want leaf", innerBand.Child.Kind())
	}
	return nil
}

// String renders the tree in an indented ISL-like textual form with
// large sets summarized by cardinality.
func String(root Node) string {
	var b strings.Builder
	print(&b, root, 0)
	return b.String()
}

func print(b *strings.Builder, n Node, depth int) {
	indent := strings.Repeat("  ", depth)
	switch node := n.(type) {
	case *SequenceNode:
		fmt.Fprintf(b, "%ssequence:\n", indent)
		for _, c := range node.Children {
			print(b, c, depth+1)
		}
	case *DomainNode:
		fmt.Fprintf(b, "%sdomain: %s\n", indent, summarizeSet(node.Set))
		print(b, node.Child, depth+1)
	case *BandNode:
		fmt.Fprintf(b, "%sband: identity over %s\n", indent, summarizeSet(node.Schedule.Domain()))
		print(b, node.Child, depth+1)
	case *ExpansionNode:
		fmt.Fprintf(b, "%sexpansion: contraction %s -> %s\n", indent,
			node.Contraction.InSpace(), node.Contraction.OutSpace())
		print(b, node.Child, depth+1)
	case *MarkNode:
		deps := make([]string, 0, len(node.Task.InDeps))
		if node.Task != nil {
			for _, d := range node.Task.InDeps {
				deps = append(deps, d.Src.Name)
			}
		}
		fmt.Fprintf(b, "%smark: %q stmt=%s in-deps=[%s]\n", indent,
			node.Name, node.Task.Stmt.Name, strings.Join(deps, ", "))
		print(b, node.Child, depth+1)
	case *LeafNode:
		fmt.Fprintf(b, "%sleaf\n", indent)
	}
}

func summarizeSet(s *isl.Set) string {
	if s.Card() <= 8 {
		return s.String()
	}
	return fmt.Sprintf("{ %s : %d points }", s.Space(), s.Card())
}
