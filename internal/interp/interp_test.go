package interp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/isl"
	"repro/internal/isl/aff"
	"repro/internal/lang"
	"repro/internal/scop"
)

func TestArrayOffsets(t *testing.T) {
	// Access with a negative index must be covered by the allocation.
	b := scop.NewBuilder("neg")
	b.Array("A", 1).Array("B", 1)
	b.Stmt("S", aff.RectDomain("S", 5)).
		Writes("A", aff.Var(1, 0)).
		Reads("B", aff.Linear(-2, 1)) // B[i-2]: indices -2..2
	sc := b.MustBuild()
	st := NewState(sc)
	arr := st.Array("B")
	st.Reset()
	arr.Set(isl.NewVec(-2), 7.5)
	if arr.At(isl.NewVec(-2)) != 7.5 {
		t.Fatal("negative index broken")
	}
}

func TestArrayOutOfRangePanics(t *testing.T) {
	b := scop.NewBuilder("x")
	b.Array("A", 1)
	b.Stmt("S", aff.RectDomain("S", 3)).Writes("A", aff.Var(1, 0))
	sc := b.MustBuild()
	st := NewState(sc)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	st.Array("A").At(isl.NewVec(99))
}

func TestResetDeterministic(t *testing.T) {
	b := scop.NewBuilder("x")
	b.Array("A", 2)
	b.Stmt("S", aff.RectDomain("S", 4, 4)).
		Writes("A", aff.Var(2, 0), aff.Var(2, 1))
	sc := b.MustBuild()
	st := NewState(sc)
	st.Reset()
	h1 := st.Hash()
	st.Array("A").Set(isl.NewVec(1, 1), 42)
	if st.Hash() == h1 {
		t.Fatal("hash insensitive")
	}
	st.Reset()
	if st.Hash() != h1 {
		t.Fatal("reset not deterministic")
	}
}

func TestProgramifyListing1DSL(t *testing.T) {
	src := `
for (i = 0; i < 19; i++)
  for (j = 0; j < 19; j++)
    S: A[i][j] = f(A[i][j], A[i][j+1], A[i+1][j+1]);
for (i = 0; i < 9; i++)
  for (j = 0; j < 9; j++)
    R: B[i][j] = g(A[i][2*j], B[i][j+1], B[i+1][j+1], B[i][j]);
`
	sc, err := lang.Parse("listing1", src)
	if err != nil {
		t.Fatal(err)
	}
	p := Programify(sc)
	if !sc.HasBodies() {
		t.Fatal("bodies not attached")
	}
	if err := exec.Verify(p, 4, core.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestProgramifyBodyIsOrderSensitive(t *testing.T) {
	// Two programs differing only in read order must produce different
	// results — the synthetic body must not commute over its reads, or
	// scheduling bugs could cancel out.
	mk := func(swap bool) uint64 {
		b := scop.NewBuilder("x")
		b.Array("A", 1).Array("B", 1).Array("C", 1)
		sb := b.Stmt("S", aff.RectDomain("S", 6)).Writes("C", aff.Var(1, 0))
		if swap {
			sb.Reads("B", aff.Var(1, 0)).Reads("A", aff.Var(1, 0))
		} else {
			sb.Reads("A", aff.Var(1, 0)).Reads("B", aff.Var(1, 0))
		}
		sc := b.MustBuild()
		p := Programify(sc)
		exec.RunSequential(sc)
		return p.Hash()
	}
	if mk(false) == mk(true) {
		t.Fatal("synthetic body is insensitive to read order")
	}
}

func TestProgramifyDeepNest(t *testing.T) {
	// Depth-3 nests: the paper's prototype was limited to depth 2; this
	// implementation handles arbitrary depth end-to-end.
	b := scop.NewBuilder("deep")
	b.Array("A", 3).Array("B", 3)
	b.Stmt("S", aff.RectDomain("S", 4, 4, 4)).
		Writes("A", aff.Var(3, 0), aff.Var(3, 1), aff.Var(3, 2)).
		Reads("A", aff.Var(3, 0), aff.Var(3, 1), aff.Linear(1, 0, 0, 1))
	b.Stmt("T", aff.RectDomain("T", 4, 4, 4)).
		Writes("B", aff.Var(3, 0), aff.Var(3, 1), aff.Var(3, 2)).
		Reads("A", aff.Var(3, 0), aff.Var(3, 1), aff.Var(3, 2)).
		Reads("B", aff.Var(3, 0), aff.Var(3, 1), aff.Linear(1, 0, 0, 1))
	sc := b.MustBuild()
	p := Programify(sc)
	if err := exec.Verify(p, 4, core.Options{}); err != nil {
		t.Fatal(err)
	}
	info, err := core.Detect(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Pairs) != 1 {
		t.Fatalf("pairs = %d", len(info.Pairs))
	}
}

func TestUnaccessedArrayAllocated(t *testing.T) {
	b := scop.NewBuilder("x")
	b.Array("A", 1).Array("Z", 2) // Z declared, never touched
	b.Stmt("S", aff.RectDomain("S", 3)).Writes("A", aff.Var(1, 0))
	sc := b.MustBuild()
	st := NewState(sc)
	if st.Array("Z") == nil {
		t.Fatal("unaccessed array missing")
	}
	st.Reset()
	_ = st.Hash()
}
