package interp

import "math"

// This file is the single definition of the synthetic statement-body
// semantics — the seam shared by the interpreter (bodyFor), the
// mid-level IR (internal/ir, whose reference evaluator must match the
// interpreter bit for bit), and the AOT backend (internal/gogen, whose
// emitted Go text implements the same formulas with the same
// constants). Changing anything here changes every result hash in the
// system; the cross-backend differential harnesses exist to catch a
// drift between the three implementations.
//
// The body of a statement with reads r_1..r_k (declaration order) at
// iteration vector iv is:
//
//	acc := AccInit
//	for each read: acc = FoldRead(acc, value(r_i))
//	v := Finish(acc, Σ iv)
//	write cell = v            (or sink += SinkFold(v) without a write)

// Synthetic-body constants. Exported so code generators can embed the
// exact literals.
const (
	// AccInit seeds the read accumulator.
	AccInit = 1.0
	// AccScale and LinScale combine the accumulator with the iteration
	// coordinates in Finish.
	AccScale = 0.3
	// LinScale weighs the linear iteration term.
	LinScale = 0.01
	// SquashLimit bounds value magnitudes across long chains.
	SquashLimit = 1e6
	// SinkScale converts a computed value to the integer a sink
	// statement accumulates.
	SinkScale = 1024
)

// FoldRead folds one read value into the accumulator.
func FoldRead(acc, v float64) float64 { return acc/2 + v }

// Finish combines the accumulator with the linear iteration term and
// squashes the magnitude.
func Finish(acc float64, lin int) float64 {
	v := acc*AccScale + LinScale*float64(lin)
	if v > SquashLimit || v < -SquashLimit {
		v = math.Mod(v, SquashLimit)
	}
	return v
}

// SinkFold converts a computed value to the sink-accumulator integer
// (order-insensitive under any legal schedule).
func SinkFold(v float64) int64 { return int64(v * SinkScale) }

// SeedBase returns the per-array seed (the FNV-1a hash of its name).
func SeedBase(name string) uint64 { return hashString(name) }

// SeedValue returns the deterministic initial value of flat cell i of
// an array seeded with base.
func SeedValue(base uint64, i int) float64 {
	return float64(splitmix(base+uint64(i))%4096)/512.0 - 4.0
}
