// Package interp executes analysis-only SCoPs (for example, programs
// parsed from the DSL, which carry no statement bodies): it allocates
// one float64 array per SCoP array — sized to cover every declared
// access — and attaches a deterministic synthetic body to every
// statement that folds the statement's reads (in declaration order)
// into the written cell.
//
// Because the synthetic bodies read and write exactly the cells the
// access relations declare, interpretation is a faithful executable
// twin of the polyhedral description, which makes it the workhorse of
// the differential tests: any scheduling error in the pipeline
// transformation changes the bits of the result.
package interp

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/isl"
	"repro/internal/kernels"
	"repro/internal/scop"
)

// Array is a dense float64 array with per-dimension offsets, so
// accesses with negative or shifted indices stay in bounds.
type Array struct {
	name   string
	offset []int // minimum accessed index per dimension
	extent []int // number of cells per dimension
	data   []float64
}

// index maps an access index vector to the flat position.
func (a *Array) index(idx isl.Vec) int {
	pos := 0
	for d, x := range idx {
		rel := x - a.offset[d]
		if rel < 0 || rel >= a.extent[d] {
			panic(fmt.Sprintf("interp: access %s%v outside allocated [%v, %v+%v)",
				a.name, idx, a.offset, a.offset, a.extent))
		}
		pos = pos*a.extent[d] + rel
	}
	return pos
}

// At returns the value at idx.
func (a *Array) At(idx isl.Vec) float64 { return a.data[a.index(idx)] }

// Set stores v at idx.
func (a *Array) Set(idx isl.Vec, v float64) { a.data[a.index(idx)] = v }

// maxAccessArity bounds the array dimensionality the synthetic bodies
// support (stack-allocated index buffers).
const maxAccessArity = 8

// State holds the arrays of one SCoP plus per-statement sink
// accumulators: statements without a write access fold an
// order-insensitive integer digest of their computed values into their
// accumulator, so scheduling errors around pure readers still change
// the state hash. Accumulation is atomic because the Polly-baseline
// executor may run a conflict-free sink statement's iterations in
// parallel.
type State struct {
	arrays    map[string]*Array
	order     []string
	sinks     map[string]*atomic.Int64
	sinkNames []string
}

// NewState allocates arrays covering every access of sc.
func NewState(sc *scop.SCoP) *State {
	st := &State{arrays: make(map[string]*Array), sinks: make(map[string]*atomic.Int64)}
	for _, s := range sc.Stmts {
		if s.Write == nil {
			st.sinks[s.Name] = new(atomic.Int64)
			st.sinkNames = append(st.sinkNames, s.Name)
		}
	}
	sortStrings(st.sinkNames)
	type bounds struct{ lo, hi []int }
	bs := map[string]*bounds{}
	consider := func(rel *isl.Map) {
		name := rel.OutSpace().Name
		b := bs[name]
		rel.Range().Foreach(func(idx isl.Vec) bool {
			if b == nil {
				b = &bounds{lo: idx.Clone(), hi: idx.Clone()}
				bs[name] = b
			}
			for d, x := range idx {
				if x < b.lo[d] {
					b.lo[d] = x
				}
				if x > b.hi[d] {
					b.hi[d] = x
				}
			}
			return true
		})
	}
	for _, s := range sc.Stmts {
		if s.Write != nil {
			consider(s.Write.Rel)
		}
		for i := range s.Reads {
			consider(s.Reads[i].Rel)
		}
	}
	for name, arr := range sc.Arrays {
		b := bs[name]
		if b == nil {
			// Declared but never accessed: single cell.
			b = &bounds{lo: make([]int, arr.Dim), hi: make([]int, arr.Dim)}
		}
		extent := make([]int, len(b.lo))
		size := 1
		for d := range extent {
			extent[d] = b.hi[d] - b.lo[d] + 1
			size *= extent[d]
		}
		st.arrays[name] = &Array{
			name:   name,
			offset: b.lo,
			extent: extent,
			data:   make([]float64, size),
		}
		st.order = append(st.order, name)
	}
	sortStrings(st.order)
	return st
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// Array returns the named array.
func (st *State) Array(name string) *Array { return st.arrays[name] }

// Reset seeds every array deterministically and clears the sink
// accumulators.
func (st *State) Reset() {
	for _, a := range st.sinks {
		a.Store(0)
	}
	for _, name := range st.order {
		a := st.arrays[name]
		seed := SeedBase(name)
		for i := range a.data {
			a.data[i] = SeedValue(seed, i)
		}
	}
}

// Hash digests all arrays (order-sensitively) and the sink
// accumulators.
func (st *State) Hash() uint64 {
	h := uint64(14695981039346656037)
	for _, name := range st.order {
		for _, v := range st.arrays[name].data {
			h ^= math.Float64bits(v)
			h *= 1099511628211
		}
	}
	for _, name := range st.sinkNames {
		h ^= uint64(st.sinks[name].Load())
		h *= 1099511628211
	}
	return h
}

func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Attach installs a synthetic body on every statement of sc, bound to
// this state. Bodies are deterministic and order-sensitive in the
// declared reads:
//
//	acc = 1
//	for each read r (in declaration order): acc = acc/2 + value(r)
//	write cell = acc*0.3 + 0.01*Σ(iteration coords)
//
// A final squash keeps magnitudes bounded across long chains.
func (st *State) Attach(sc *scop.SCoP) {
	for _, s := range sc.Stmts {
		s.Body = st.bodyFor(s)
	}
}

func (st *State) bodyFor(s *scop.Statement) scop.Body {
	type reader struct {
		arr   *Array
		exprs []func(isl.Vec) int
	}
	compileAccess := func(a *scop.AccessRef) reader {
		if len(a.Access.Exprs) > maxAccessArity {
			panic(fmt.Sprintf("interp: access to %q has %d subscripts, max %d",
				a.Array(), len(a.Access.Exprs), maxAccessArity))
		}
		arr := st.arrays[a.Array()]
		exprs := make([]func(isl.Vec) int, len(a.Access.Exprs))
		for d := range a.Access.Exprs {
			e := a.Access.Exprs[d]
			exprs[d] = e.Eval
		}
		return reader{arr: arr, exprs: exprs}
	}
	var reads []reader
	for i := range s.Reads {
		reads = append(reads, compileAccess(&s.Reads[i]))
	}
	var write *reader
	if s.Write != nil {
		w := compileAccess(s.Write)
		write = &w
	}
	sink := st.sinks[s.Name]
	eval := func(r reader, iv isl.Vec, idx isl.Vec) isl.Vec {
		for d := range r.exprs {
			idx[d] = r.exprs[d](iv)
		}
		return idx
	}
	return func(iv isl.Vec) {
		acc := float64(AccInit)
		var buf [maxAccessArity]int
		for _, r := range reads {
			idx := eval(r, iv, buf[:len(r.exprs)])
			acc = FoldRead(acc, r.arr.At(idx))
		}
		lin := 0
		for _, x := range iv {
			lin += x
		}
		v := Finish(acc, lin)
		if write != nil {
			idx := eval(*write, iv, buf[:len(write.exprs)])
			write.arr.Set(idx, v)
		} else if sink != nil {
			// Order-insensitive integer fold: safe under any legal
			// schedule, including parallel sink iterations, yet
			// sensitive to the values read.
			sink.Add(SinkFold(v))
		}
	}
}

// Programify wraps an analysis-only SCoP into a runnable Program with
// synthetic bodies, ready for the executors.
func Programify(sc *scop.SCoP) *kernels.Program {
	st := NewState(sc)
	st.Attach(sc)
	st.Reset()
	return &kernels.Program{
		Name:  sc.Name,
		SCoP:  sc,
		Reset: st.Reset,
		Hash:  st.Hash,
	}
}
