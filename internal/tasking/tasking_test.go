package tasking

import (
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/obs"
)

func TestSingleTask(t *testing.T) {
	var ran atomic.Bool
	Run(2, func(submit func(Task)) {
		submit(Task{Fn: func() { ran.Store(true) }, Out: 0, Serial: NoSerial})
	})
	if !ran.Load() {
		t.Fatal("task did not run")
	}
}

func TestInDependencyOrdering(t *testing.T) {
	// writer -> reader through address 7, repeated to catch races.
	for trial := 0; trial < 50; trial++ {
		var order []int
		var mu sync.Mutex
		record := func(id int) func() {
			return func() {
				mu.Lock()
				order = append(order, id)
				mu.Unlock()
			}
		}
		Run(4, func(submit func(Task)) {
			submit(Task{Fn: record(1), Out: 7, Serial: NoSerial})
			submit(Task{Fn: record(2), In: []int{7}, Out: 8, Serial: NoSerial})
			submit(Task{Fn: record(3), In: []int{8}, Out: 9, Serial: NoSerial})
		})
		if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
			t.Fatalf("trial %d: order = %v", trial, order)
		}
	}
}

func TestMultipleInDeps(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		var aDone, bDone, observed atomic.Bool
		Run(4, func(submit func(Task)) {
			submit(Task{Fn: func() { time.Sleep(time.Microsecond); aDone.Store(true) }, Out: 1, Serial: NoSerial})
			submit(Task{Fn: func() { bDone.Store(true) }, Out: 2, Serial: NoSerial})
			submit(Task{Fn: func() {
				observed.Store(aDone.Load() && bDone.Load())
			}, In: []int{1, 2}, Out: 3, Serial: NoSerial})
		})
		if !observed.Load() {
			t.Fatalf("trial %d: consumer ran before both producers", trial)
		}
	}
}

func TestSerialKeyOrdersTasks(t *testing.T) {
	// Independent tasks sharing a serialization key must run in
	// creation order even with many workers (the funcCount rule).
	const n = 100
	var mu sync.Mutex
	var order []int
	Run(8, func(submit func(Task)) {
		for i := 0; i < n; i++ {
			i := i
			submit(Task{
				Fn: func() {
					mu.Lock()
					order = append(order, i)
					mu.Unlock()
				},
				Out:    i,
				Serial: 5,
			})
		}
	})
	if len(order) != n {
		t.Fatalf("ran %d tasks", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("order[%d] = %d; serialized tasks ran out of order", i, got)
		}
	}
}

func TestIndependentSerialKeysOverlap(t *testing.T) {
	// Two serialized chains with different keys should be able to
	// overlap; verify both complete and each chain stays ordered.
	var mu sync.Mutex
	perKey := map[int][]int{}
	Run(4, func(submit func(Task)) {
		for i := 0; i < 40; i++ {
			for key := 0; key < 2; key++ {
				key, i := key, i
				submit(Task{
					Fn: func() {
						mu.Lock()
						perKey[key] = append(perKey[key], i)
						mu.Unlock()
					},
					Out:    -1,
					Serial: key,
				})
			}
		}
	})
	for key, order := range perKey {
		if len(order) != 40 {
			t.Fatalf("key %d ran %d tasks", key, len(order))
		}
		for i, got := range order {
			if got != i {
				t.Fatalf("key %d out of order at %d: %d", key, i, got)
			}
		}
	}
}

func TestDependencyOnCompletedTask(t *testing.T) {
	// A task submitted long after its dependency finished must still
	// run (done-predecessor edges are skipped, not leaked).
	r := New(2)
	var x atomic.Int64
	r.Submit(Task{Fn: func() { x.Store(41) }, Out: 0, Serial: NoSerial})
	r.Wait()
	r.Submit(Task{Fn: func() { x.Add(1) }, In: []int{0}, Serial: NoSerial})
	r.Close()
	if x.Load() != 42 {
		t.Fatalf("x = %d", x.Load())
	}
}

func TestWaitIdempotentAndStats(t *testing.T) {
	r := New(3)
	for i := 0; i < 10; i++ {
		r.Submit(Task{Fn: func() { time.Sleep(time.Microsecond) }, Out: i, Serial: NoSerial})
	}
	r.Wait()
	r.Wait()
	executed, maxRun := r.Stats()
	if executed != 10 {
		t.Fatalf("executed = %d", executed)
	}
	if maxRun < 1 || maxRun > 3 {
		t.Fatalf("maxConcurrent = %d, want within [1,3]", maxRun)
	}
	r.Close()
}

func TestSubmitAfterClosePanics(t *testing.T) {
	r := New(1)
	r.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Submit(Task{Fn: func() {}, Serial: NoSerial})
}

func TestNewRejectsZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

func TestTraceEvents(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	r := New(2)
	r.SetTrace(func(e Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})
	r.Submit(Task{Fn: func() {}, Label: "a", Out: 0, Serial: NoSerial})
	r.Submit(Task{Fn: func() {}, Label: "b", In: []int{0}, Serial: NoSerial})
	r.Close()
	// Each task reports submit, ready, start, and end.
	if len(events) != 8 {
		t.Fatalf("events = %d, want 8", len(events))
	}
	seen := map[string]map[EventKind]time.Time{}
	for _, e := range events {
		if seen[e.Label] == nil {
			seen[e.Label] = map[EventKind]time.Time{}
		}
		seen[e.Label][e.Kind] = e.When
		switch e.Kind {
		case EventStart, EventEnd:
			if e.Worker < 0 {
				t.Fatalf("%s event of %q has no worker", e.Kind, e.Label)
			}
		default:
			if e.Worker != -1 {
				t.Fatalf("%s event of %q has worker %d", e.Kind, e.Label, e.Worker)
			}
		}
	}
	for label, kinds := range seen {
		if len(kinds) != 4 {
			t.Fatalf("task %q saw kinds %v", label, kinds)
		}
		if kinds[EventReady].Before(kinds[EventSubmit]) ||
			kinds[EventStart].Before(kinds[EventReady]) ||
			kinds[EventEnd].Before(kinds[EventStart]) {
			t.Fatalf("task %q transitions out of order: %v", label, kinds)
		}
	}
	// b depends on a, so b must become ready no earlier than a ends.
	if seen["b"][EventReady].Before(seen["a"][EventEnd]) {
		t.Fatal("dependent task became ready before its predecessor ended")
	}
}

// TestObserveMetrics runs a small dependent workload with a registry
// installed and checks the derived execution metrics.
func TestObserveMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	r := New(2)
	r.Observe(reg)
	const tasks = 20
	for i := 0; i < tasks; i++ {
		r.Submit(Task{
			Fn:     func() { time.Sleep(200 * time.Microsecond) },
			Label:  "t",
			Out:    i,
			Serial: 0, // one serial chain: concurrency stays at 1
		})
	}
	r.Close()
	s := reg.Snapshot()
	if got := s.Counter("tasking.submitted"); got != tasks {
		t.Errorf("submitted = %d", got)
	}
	if got := s.Counter("tasking.executed"); got != tasks {
		t.Errorf("executed = %d", got)
	}
	if got := s.Gauge("tasking.queue_depth"); got != 0 {
		t.Errorf("queue_depth after drain = %d", got)
	}
	if got := s.Gauge("tasking.running"); got != 0 {
		t.Errorf("running after drain = %d", got)
	}
	if got := s.Gauge("tasking.peak_concurrency"); got != 1 {
		t.Errorf("peak_concurrency = %d, want 1 (serial chain)", got)
	}
	if got := s.Gauge("tasking.workers"); got != 2 {
		t.Errorf("workers = %d", got)
	}
	if s.Counter("tasking.busy_ns_total") <= 0 {
		t.Error("busy_ns_total not recorded")
	}
	if s.Histograms["tasking.task_ns"].Count != tasks {
		t.Errorf("task_ns count = %d", s.Histograms["tasking.task_ns"].Count)
	}
	if s.Histograms["tasking.stall_ns"].Count != tasks {
		t.Errorf("stall_ns count = %d", s.Histograms["tasking.stall_ns"].Count)
	}
	// Busy time lands on the workers that executed the chain.
	var workerBusy int64
	for w := 0; w < 2; w++ {
		workerBusy += s.Counter("tasking.worker_busy_ns." + strconv.Itoa(w))
	}
	if workerBusy != s.Counter("tasking.busy_ns_total") {
		t.Errorf("worker busy sum %d != total %d", workerBusy, s.Counter("tasking.busy_ns_total"))
	}
}

// TestQuickRandomDAGRespectsDeps builds random layered DAGs and checks
// that every task observes all of its transitive in-dependencies
// completed.
func TestQuickRandomDAGRespectsDeps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nTasks := 2 + rng.Intn(40)
		done := make([]atomic.Bool, nTasks)
		violated := atomic.Bool{}

		type spec struct {
			in  []int
			out int
		}
		specs := make([]spec, nTasks)
		for i := range specs {
			specs[i].out = i
			// Depend on up to 3 random earlier tasks.
			for k := 0; k < rng.Intn(4) && i > 0; k++ {
				specs[i].in = append(specs[i].in, rng.Intn(i))
			}
		}
		Run(1+rng.Intn(8), func(submit func(Task)) {
			for i := range specs {
				i := i
				submit(Task{
					Fn: func() {
						for _, dep := range specs[i].in {
							if !done[dep].Load() {
								violated.Store(true)
							}
						}
						done[i].Store(true)
					},
					In:     specs[i].in,
					Out:    specs[i].out,
					Serial: NoSerial,
				})
			}
		})
		for i := range done {
			if !done[i].Load() {
				return false
			}
		}
		return !violated.Load()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestManyTasksThroughput(t *testing.T) {
	// Smoke test: thousands of small tasks complete without deadlock.
	var count atomic.Int64
	Run(8, func(submit func(Task)) {
		for i := 0; i < 5000; i++ {
			submit(Task{Fn: func() { count.Add(1) }, Out: i % 64, In: []int{(i + 1) % 64}, Serial: i % 7})
		}
	})
	if count.Load() != 5000 {
		t.Fatalf("count = %d", count.Load())
	}
}
