// Package tasking is the minimal OpenMP-style tasking layer the
// transformed pipelines run on (§5.4–5.5): tasks submitted in program
// order, dependencies resolved through integer addresses (the depend
// clause model), per-nest serialization via Serial keys (funcCount).
//
// Since the runtime-core unification this package is a thin adapter:
// the task vocabulary, dependency resolution, sharded work-stealing
// scheduler, lifecycle events, and metrics all live in
// internal/runtime and are shared with the futures and stages layers.
// The adapter only fixes the layer name ("tasking", which prefixes the
// metric catalogue) and keeps the default id-hash shard policy.
package tasking

import "repro/internal/runtime"

// NoSerial disables per-nest serialization for a task.
const NoSerial = runtime.NoSerial

// Task describes one unit of work and its dependency interface, the Go
// analogue of the CreateTask signature in Figure 7.
type Task = runtime.Task

// EventKind is a task lifecycle transition.
type EventKind = runtime.EventKind

// Lifecycle transitions (see runtime.EventKind).
const (
	EventSubmit = runtime.EventSubmit
	EventReady  = runtime.EventReady
	EventStart  = runtime.EventStart
	EventEnd    = runtime.EventEnd
)

// Event records a task lifecycle transition for tracing.
type Event = runtime.Event

// Runtime executes tasks with dependency tracking over integer
// addresses. It is the shared runtime.Scheduler under the "tasking"
// name; create all tasks from one goroutine, then Wait.
type Runtime = runtime.Scheduler

// New starts a runtime with the given number of worker goroutines.
func New(workers int) *Runtime {
	return runtime.NewScheduler(runtime.Config{Workers: workers, Name: "tasking"})
}

// Run is a convenience wrapper: start a runtime, let build submit
// tasks, then wait for completion and shut down.
func Run(workers int, build func(submit func(Task))) {
	r := New(workers)
	defer r.Close()
	build(r.Submit)
	r.Wait()
}
