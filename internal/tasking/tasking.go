// Package tasking is the minimal, language-agnostic tasking layer the
// transformed programs target (§5.4–5.5). It reproduces the semantics
// of the OpenMP constructs the paper's runtime uses:
//
//   - task with depend(out: addr): the task writes dependency address
//     addr; later tasks reading addr wait for it.
//   - depend(iterator(...), in: addr...): the task waits until the
//     last writer of every listed address has completed.
//   - the funcCount self-dependency (Figure 8): tasks created from the
//     same loop nest carry the same serialization key and run in
//     creation order, because blocks of one statement must execute
//     sequentially.
//
// Tasks are created from a single coordinator goroutine, in program
// order, exactly like the `omp parallel` + `omp single` launch of
// §5.4; a fixed pool of workers executes ready tasks concurrently.
package tasking

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// NoSerial disables per-nest serialization for a task.
const NoSerial = -1

// Task describes one unit of work and its dependency interface, the Go
// analogue of the CreateTask signature in Figure 7.
type Task struct {
	// Fn is the task body.
	Fn func()
	// Label identifies the task in traces ("S[3, 8]").
	Label string
	// Out is the dependency address this task writes, or a negative
	// value for none.
	Out int
	// In lists the dependency addresses whose last writers must
	// complete before this task may start.
	In []int
	// Serial, when >= 0, serializes this task after the previously
	// created task with the same Serial key (the funcCount mechanism).
	Serial int
}

// EventKind is a task lifecycle transition.
type EventKind uint8

const (
	// EventSubmit: the task was created (program order).
	EventSubmit EventKind = iota + 1
	// EventReady: the task's last predecessor finished and it entered
	// the ready queue. The gap from Ready to Start is the task's stall.
	EventReady
	// EventStart: a worker began executing the task body.
	EventStart
	// EventEnd: the task body completed.
	EventEnd
)

// String names the transition.
func (k EventKind) String() string {
	switch k {
	case EventSubmit:
		return "submit"
	case EventReady:
		return "ready"
	case EventStart:
		return "start"
	case EventEnd:
		return "end"
	}
	return "unknown"
}

// Event records a task lifecycle transition for tracing.
type Event struct {
	Kind   EventKind
	TaskID int
	Label  string
	Serial int
	Worker int // worker index for Start/End events, -1 otherwise
	When   time.Time
}

// Start reports whether this is a start event (legacy accessor; switch
// on Kind for the full transition set).
func (e Event) Start() bool { return e.Kind == EventStart }

// Runtime executes tasks with dependency tracking over integer
// addresses. Create all tasks from one goroutine, then Wait.
//
// The ready queue is sharded: each worker owns a deque guarded by its
// own mutex, pops its own shard from the back, and steals from the
// other shards front-first when its shard runs dry. The runtime mutex
// guards only the dependency graph (submission and completion), so
// ready-task handoff does not serialize the pool on one lock.
type Runtime struct {
	mu         sync.Mutex
	workCond   *sync.Cond // signaled under mu when a task enters a shard
	doneCond   *sync.Cond // signaled under mu when pending reaches zero
	shards     []deque
	ready      atomic.Int64 // tasks currently sitting in shards
	pending    int          // created but not finished
	closed     bool
	nextID     int
	lastWriter map[int]*node // dependency address -> last writing task
	lastSerial map[int]*node // serialization key -> last created task
	trace      func(Event)
	workers    sync.WaitGroup
	nworkers   int

	// stats
	executed int // guarded by mu
	running  atomic.Int64
	maxRun   atomic.Int64

	m runtimeMetrics
}

// deque is one worker's ready-task shard. Pushes land at the back; the
// owner pops newest-first (cache-warm), thieves take oldest-first.
type deque struct {
	mu    sync.Mutex
	head  int
	items []*node
}

func (d *deque) push(n *node) {
	d.mu.Lock()
	d.items = append(d.items, n)
	d.mu.Unlock()
}

func (d *deque) popBack() *node {
	d.mu.Lock()
	if d.head == len(d.items) {
		d.mu.Unlock()
		return nil
	}
	last := len(d.items) - 1
	n := d.items[last]
	d.items[last] = nil
	d.items = d.items[:last]
	if d.head == len(d.items) {
		d.items, d.head = d.items[:0], 0
	}
	d.mu.Unlock()
	return n
}

func (d *deque) popFront() *node {
	d.mu.Lock()
	if d.head == len(d.items) {
		d.mu.Unlock()
		return nil
	}
	n := d.items[d.head]
	d.items[d.head] = nil
	d.head++
	if d.head == len(d.items) {
		d.items, d.head = d.items[:0], 0
	}
	d.mu.Unlock()
	return n
}

// runtimeMetrics caches the registry instruments the runtime updates on
// its hot path; nil fields (no Observe call) cost one branch per site.
type runtimeMetrics struct {
	submitted  *obs.Counter
	executed   *obs.Counter
	stallNs    *obs.Counter
	busyNs     *obs.Counter
	queueDepth *obs.Gauge
	running    *obs.Gauge
	peak       *obs.Gauge
	stallHist  *obs.Histogram
	taskHist   *obs.Histogram
	workerBusy []*obs.Counter
}

// New starts a runtime with the given number of worker goroutines.
func New(workers int) *Runtime {
	if workers < 1 {
		panic(fmt.Sprintf("tasking: workers = %d", workers))
	}
	r := &Runtime{
		lastWriter: make(map[int]*node),
		lastSerial: make(map[int]*node),
		nworkers:   workers,
		shards:     make([]deque, workers),
	}
	r.workCond = sync.NewCond(&r.mu)
	r.doneCond = sync.NewCond(&r.mu)
	r.workers.Add(workers)
	for w := 0; w < workers; w++ {
		go r.worker(w)
	}
	return r
}

// SetTrace installs a tracing callback invoked at every task lifecycle
// transition (submit, ready, start, end). Install it before submitting
// tasks. The callback runs on coordinator and worker goroutines — for
// submit and ready under the runtime lock — so it must be internally
// synchronized and must not call back into the runtime.
func (r *Runtime) SetTrace(fn func(Event)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.trace = fn
}

// Observe wires the runtime's execution metrics into a registry (see
// docs/OBSERVABILITY.md for the name catalogue): task counts, live
// queue depth, running tasks and peak concurrency, per-task stall
// (ready→start) and duration histograms, and per-worker busy time.
// Call before submitting tasks.
func (r *Runtime) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m = runtimeMetrics{
		submitted:  reg.Counter("tasking.submitted"),
		executed:   reg.Counter("tasking.executed"),
		stallNs:    reg.Counter("tasking.stall_ns_total"),
		busyNs:     reg.Counter("tasking.busy_ns_total"),
		queueDepth: reg.Gauge("tasking.queue_depth"),
		running:    reg.Gauge("tasking.running"),
		peak:       reg.Gauge("tasking.peak_concurrency"),
		stallHist:  reg.Histogram("tasking.stall_ns", nil),
		taskHist:   reg.Histogram("tasking.task_ns", nil),
		workerBusy: make([]*obs.Counter, r.nworkers),
	}
	reg.Gauge("tasking.workers").Set(int64(r.nworkers))
	for w := 0; w < r.nworkers; w++ {
		r.m.workerBusy[w] = reg.Counter("tasking.worker_busy_ns." + strconv.Itoa(w))
	}
}

// node is the scheduler-internal task state.
type node struct {
	task      Task
	id        int
	remaining int     // unfinished predecessors
	succs     []*node // tasks waiting on this one
	done      bool
	readyAt   time.Time // when the task entered the ready queue
}

// Submit creates a task. Dependencies resolve against previously
// submitted tasks only, so submission order is program order, exactly
// like sequential task creation in an omp single region.
func (r *Runtime) Submit(t Task) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		panic("tasking: Submit after Close")
	}
	n := &node{task: t, id: r.nextID}
	r.nextID++
	r.pending++
	if r.m.submitted != nil {
		r.m.submitted.Inc()
	}
	if r.trace != nil {
		r.trace(Event{Kind: EventSubmit, TaskID: n.id, Label: t.Label, Serial: t.Serial, Worker: -1, When: time.Now()})
	}

	addPred := func(p *node) {
		if p == nil || p.done {
			return
		}
		p.succs = append(p.succs, n)
		n.remaining++
	}
	for _, addr := range t.In {
		addPred(r.lastWriter[addr])
	}
	if t.Serial >= 0 {
		addPred(r.lastSerial[t.Serial])
		r.lastSerial[t.Serial] = n
	}
	if t.Out >= 0 {
		r.lastWriter[t.Out] = n
	}
	if n.remaining == 0 {
		r.enqueueLocked(n)
	}
}

// enqueueLocked moves a node whose predecessors are all done into a
// ready shard. The ready event is emitted under the runtime lock so it
// is globally ordered before the task's start event; the ready counter
// is incremented under the same lock, which is what makes the workers'
// sleep check race-free.
func (r *Runtime) enqueueLocked(n *node) {
	n.readyAt = time.Now()
	if r.m.queueDepth != nil {
		r.m.queueDepth.Add(1)
	}
	if r.trace != nil {
		r.trace(Event{Kind: EventReady, TaskID: n.id, Label: n.task.Label, Serial: n.task.Serial, Worker: -1, When: n.readyAt})
	}
	r.shards[n.id%r.nworkers].push(n)
	r.ready.Add(1)
	r.workCond.Signal()
}

// take returns a ready task for worker id, or nil when every shard is
// empty: first the worker's own shard back-first, then the other
// shards front-first (stealing the oldest work).
func (r *Runtime) take(id int) *node {
	if n := r.shards[id].popBack(); n != nil {
		r.ready.Add(-1)
		return n
	}
	for k := 1; k < r.nworkers; k++ {
		if n := r.shards[(id+k)%r.nworkers].popFront(); n != nil {
			r.ready.Add(-1)
			return n
		}
	}
	return nil
}

func (r *Runtime) worker(id int) {
	defer r.workers.Done()
	for {
		n := r.take(id)
		if n == nil {
			// Both the increment of ready and the Signal happen under
			// mu, so checking under mu cannot miss a wakeup; a stale
			// positive just loops back into another steal sweep.
			r.mu.Lock()
			for r.ready.Load() == 0 && !r.closed {
				r.workCond.Wait()
			}
			closed := r.ready.Load() == 0 && r.closed
			r.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		r.execute(id, n)
	}
}

// execute runs one task body and resolves its successors.
func (r *Runtime) execute(id int, n *node) {
	run := r.running.Add(1)
	for {
		old := r.maxRun.Load()
		if run <= old || r.maxRun.CompareAndSwap(old, run) {
			break
		}
	}
	m := r.m
	trace := r.trace

	start := time.Now()
	if m.queueDepth != nil {
		m.queueDepth.Add(-1)
		m.running.Add(1)
		m.peak.Max(r.maxRun.Load())
		stall := start.Sub(n.readyAt).Nanoseconds()
		m.stallNs.Add(stall)
		m.stallHist.Observe(stall)
	}
	if trace != nil {
		trace(Event{Kind: EventStart, TaskID: n.id, Label: n.task.Label, Serial: n.task.Serial, Worker: id, When: start})
	}
	if n.task.Fn != nil {
		n.task.Fn()
	}
	end := time.Now()
	if trace != nil {
		trace(Event{Kind: EventEnd, TaskID: n.id, Label: n.task.Label, Serial: n.task.Serial, Worker: id, When: end})
	}
	if m.queueDepth != nil {
		busy := end.Sub(start).Nanoseconds()
		m.running.Add(-1)
		m.executed.Inc()
		m.busyNs.Add(busy)
		m.taskHist.Observe(busy)
		m.workerBusy[id].Add(busy)
	}
	r.running.Add(-1)

	r.mu.Lock()
	n.done = true
	r.executed++
	r.pending--
	for _, s := range n.succs {
		s.remaining--
		if s.remaining == 0 {
			r.enqueueLocked(s)
		}
	}
	if r.pending == 0 {
		r.doneCond.Broadcast()
	}
	r.mu.Unlock()
}

// Wait blocks until every submitted task has completed. It may be
// called repeatedly; tasks may not be submitted concurrently with
// Wait.
func (r *Runtime) Wait() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.pending > 0 {
		r.doneCond.Wait()
	}
}

// Close waits for all tasks and shuts the workers down. The runtime
// cannot be reused afterwards.
func (r *Runtime) Close() {
	r.Wait()
	r.mu.Lock()
	r.closed = true
	r.workCond.Broadcast()
	r.mu.Unlock()
	r.workers.Wait()
}

// Stats reports execution counters: total tasks executed and the
// maximum number of tasks observed running simultaneously.
func (r *Runtime) Stats() (executed, maxConcurrent int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.executed, int(r.maxRun.Load())
}

// Run is the high-level entry point: it starts a runtime, hands the
// submit function to build (which creates tasks in program order, like
// the extracted function called under omp parallel/single), and blocks
// until all tasks finish.
func Run(workers int, build func(submit func(Task))) {
	r := New(workers)
	build(r.Submit)
	r.Close()
}
