package par

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversEachIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		for _, n := range []int{0, 1, 7, 100} {
			hits := make([]atomic.Int32, n)
			For(n, workers, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForSerialRunsInline(t *testing.T) {
	var order []int
	For(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-2); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-2) = %d, want GOMAXPROCS", got)
	}
}

func TestForCtxNilAndComplete(t *testing.T) {
	// nil ctx is plain For.
	hits := make([]atomic.Int32, 20)
	if err := ForCtx(nil, 20, 4, func(i int) { hits[i].Add(1) }); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("nil ctx: index %d ran %d times", i, hits[i].Load())
		}
	}
	// A live ctx covers every index exactly once, serial and parallel.
	for _, workers := range []int{1, 3} {
		hits := make([]atomic.Int32, 15)
		if err := ForCtx(context.Background(), 15, workers, func(i int) { hits[i].Add(1) }); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestForCtxCancelStopsAdmission(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		err := ForCtx(ctx, 1000, workers, func(i int) {
			if ran.Add(1) == 3 {
				cancel()
			}
		})
		cancel()
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Cancellation is admission control: in-flight calls finish, but
		// admission stops soon after — well short of the full range.
		if n := ran.Load(); n < 3 || n >= 1000 {
			t.Fatalf("workers=%d: %d indices ran after cancel at 3", workers, n)
		}
	}
}

func TestForCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	if err := ForCtx(ctx, 50, 4, func(i int) { ran.Add(1) }); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if workers := 1; true {
		if err := ForCtx(ctx, 50, workers, func(i int) { ran.Add(1) }); err != context.Canceled {
			t.Fatalf("serial err = %v, want context.Canceled", err)
		}
	}
	if ran.Load() != 0 {
		t.Fatalf("%d indices ran on a pre-canceled ctx", ran.Load())
	}
}
