package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversEachIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		for _, n := range []int{0, 1, 7, 100} {
			hits := make([]atomic.Int32, n)
			For(n, workers, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForSerialRunsInline(t *testing.T) {
	var order []int
	For(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-2); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-2) = %d, want GOMAXPROCS", got)
	}
}
