// Package par holds the bounded worker pool the detection pipeline
// fans its independent per-pair and per-statement jobs over. It is a
// deliberately small primitive: jobs are indexed [0, n), workers pull
// indices from one atomic counter, and callers write results into
// index-addressed slots, so merges stay deterministic regardless of
// execution interleaving (see docs/PERFORMANCE.md).
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count option: values > 0 pass through,
// anything else means GOMAXPROCS.
func Workers(opt int) int {
	if opt > 0 {
		return opt
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n) across at most workers
// goroutines, pulling indices from a shared atomic counter. With
// workers <= 1 (or a single item) it runs inline on the calling
// goroutine — byte-for-byte the serial path. For returns only after
// every fn call has returned, so callers may read all result slots
// without further synchronization.
func For(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForCtx is For with cooperative cancellation: workers stop pulling
// new indices once ctx is done, and ForCtx returns ctx.Err() (nil when
// every index ran). In-flight fn calls always finish — cancellation is
// admission control, not preemption — so on a non-nil return the set
// of visited indices is some subset of [0, n) and callers must treat
// unvisited result slots as unset. The deadline/cancel signal
// propagates no further than this loop; fn itself is never handed the
// context.
func ForCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if ctx == nil {
		For(n, workers, fn)
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
