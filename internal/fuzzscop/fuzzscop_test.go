package fuzzscop

import (
	"math/rand"
	"testing"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/exec"
	"repro/internal/interp"
	"repro/internal/runtime"
	"repro/internal/scop"
)

func TestRandomProgramsAreValid(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		r := rand.New(rand.NewSource(seed))
		sc := Random(r, Config{})
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := deps.CrossHazards(sc); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestDifferentialPipelined is the core soundness net: for many random
// programs, the pipelined execution must reproduce the sequential
// result bit-for-bit under several worker counts and options.
func TestDifferentialPipelined(t *testing.T) {
	seeds := 120
	if testing.Short() {
		seeds = 25
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		r := rand.New(rand.NewSource(seed))
		sc := Random(r, Config{})
		p := interp.Programify(sc)
		opts := core.Options{}
		if r.Intn(3) == 0 {
			opts.MinBlockIters = 1 + r.Intn(8)
		}
		if r.Intn(4) == 0 {
			opts.PairwiseBlocks = true
		}
		workers := 1 + r.Intn(8)
		if err := exec.Verify(p, workers, opts); err != nil {
			t.Fatalf("seed %d (workers=%d, opts=%+v, scop=%s): %v",
				seed, workers, opts, sc.Name, err)
		}
	}
}

// TestDifferentialSerialHeavy stresses the fully serialized case where
// every nest carries anti deps (the paper's target workloads).
func TestDifferentialSerialHeavy(t *testing.T) {
	for seed := int64(1000); seed < 1040; seed++ {
		r := rand.New(rand.NewSource(seed))
		sc := Random(r, Config{SelfSerial: AlwaysSerial})
		p := interp.Programify(sc)
		g := deps.Analyze(sc)
		for _, s := range sc.Stmts {
			par := g.ParallelDims(s)
			if par[len(par)-1] {
				t.Fatalf("seed %d: self-serialized nest %s has a parallel innermost loop", seed, s.Name)
			}
		}
		if err := exec.Verify(p, 4, core.Options{}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestDifferentialDataParallel stresses programs with no intra-nest
// conflicts, where the baseline parallelizes everything.
func TestDifferentialDataParallel(t *testing.T) {
	for seed := int64(2000); seed < 2040; seed++ {
		r := rand.New(rand.NewSource(seed))
		sc := Random(r, Config{SelfSerial: NeverSerial})
		p := interp.Programify(sc)
		if err := exec.Verify(p, 6, core.Options{}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestDifferentialHybrid exercises the hybrid executor (intra-block
// parallelism on conflict-free nests) on random programs.
func TestDifferentialHybrid(t *testing.T) {
	for seed := int64(5000); seed < 5060; seed++ {
		r := rand.New(rand.NewSource(seed))
		sc := Random(r, Config{})
		p := interp.Programify(sc)
		want := exec.Sequential(p).Hash
		res, err := exec.PipelinedHybrid(p, 1+r.Intn(4), 2+r.Intn(3), core.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Hash != want {
			t.Fatalf("seed %d (%s): hybrid differs from sequential", seed, sc.Name)
		}
	}
}

// TestDifferentialOverwrites exercises the relaxed last-writer
// extension: programs with non-injective writes must still match
// sequential execution when pipelined with AllowOverwrites.
func TestDifferentialOverwrites(t *testing.T) {
	for seed := int64(4000); seed < 4080; seed++ {
		r := rand.New(rand.NewSource(seed))
		sc := Random(r, Config{Overwrites: true})
		p := interp.Programify(sc)
		if err := exec.Verify(p, 4, core.Options{AllowOverwrites: true}); err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sc.Name, err)
		}
	}
}

// TestDifferentialDepth3 stresses depth-3 nests (beyond the paper's
// prototype, which generated code only up to depth 2).
func TestDifferentialDepth3(t *testing.T) {
	for seed := int64(6000); seed < 6040; seed++ {
		r := rand.New(rand.NewSource(seed))
		sc := Random(r, Config{MaxDepth: 3, MaxExtent: 5})
		p := interp.Programify(sc)
		if err := exec.Verify(p, 4, core.Options{}); err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sc.Name, err)
		}
	}
}

func TestDetectNeverPanicsOnRandomPrograms(t *testing.T) {
	for seed := int64(3000); seed < 3200; seed++ {
		r := rand.New(rand.NewSource(seed))
		sc := Random(r, Config{MaxNests: 5, MaxExtent: 10})
		info, err := core.Detect(sc, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Structural sanity: every statement has blocks covering its
		// domain exactly.
		for _, si := range info.Stmts {
			n := 0
			for _, blk := range si.Blocks {
				n += len(blk.Members)
			}
			if n != si.Stmt.Domain.Card() {
				t.Fatalf("seed %d: %s blocks cover %d of %d iterations",
					seed, si.Stmt.Name, n, si.Stmt.Domain.Card())
			}
		}
	}
}

// runThroughRuntime lowers sc to the compiled runtime IR and executes
// it under several worker counts. ExecuteChecked fails if any task
// never ran (a deadlock or lost wakeup) or any dependency edge was
// left unresolved — i.e. some indegree never reached zero — and the
// array state must still match sequential execution bit-for-bit.
func runThroughRuntime(t *testing.T, sc *scop.SCoP, opts core.Options) {
	t.Helper()
	p := interp.Programify(sc)
	info, err := core.Detect(sc, opts)
	if err != nil {
		t.Fatalf("%s: detect: %v", sc.Name, err)
	}
	prog, err := codegen.Compile(info)
	if err != nil {
		t.Fatalf("%s: compile: %v", sc.Name, err)
	}
	ir := prog.Lower()
	want := exec.Sequential(p).Hash
	for _, workers := range []int{1, 2, 4, 7} {
		p.Reset()
		st, err := ir.ExecuteChecked(workers, runtime.ExecOptions{})
		if err != nil {
			t.Fatalf("%s (workers=%d): %v", sc.Name, workers, err)
		}
		if st.Executed != ir.NumTasks() {
			t.Fatalf("%s (workers=%d): executed %d of %d tasks",
				sc.Name, workers, st.Executed, ir.NumTasks())
		}
		if got := p.Hash(); got != want {
			t.Fatalf("%s (workers=%d): runtime hash %x != sequential %x",
				sc.Name, workers, got, want)
		}
	}
}

// TestStressExecutesThroughRuntime drives the deterministic stress
// SCoP through the unified runtime: lowered once, executed under
// several worker counts, every execution checked for completeness.
func TestStressExecutesThroughRuntime(t *testing.T) {
	runThroughRuntime(t, Stress(), core.Options{})
}

// TestDifferentialRuntimeExecution fuzzes the runtime directly: random
// SCoPs (including overwriting and serial-heavy shapes) are lowered to
// the IR and executed checked — no deadlocks, all indegrees drained,
// results bit-identical to sequential.
func TestDifferentialRuntimeExecution(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 15
	}
	for seed := int64(9000); seed < int64(9000+seeds); seed++ {
		r := rand.New(rand.NewSource(seed))
		cfg := Config{Sink: r.Intn(2) == 0, Overwrites: r.Intn(3) == 0}
		opts := core.Options{AllowOverwrites: cfg.Overwrites}
		if r.Intn(3) == 0 {
			opts.MinBlockIters = 1 + r.Intn(6)
		}
		sc := Random(r, cfg)
		runThroughRuntime(t, sc, opts)
	}
}

// TestDifferentialSinks covers pure-reader (no-write) final nests: the
// interpreter folds sink values into the hash, so mis-scheduled sinks
// (reading arrays before their writers finished) change the result.
func TestDifferentialSinks(t *testing.T) {
	for seed := int64(8000); seed < 8060; seed++ {
		r := rand.New(rand.NewSource(seed))
		sc := Random(r, Config{Sink: true})
		if sc.Statement("Sink") == nil {
			continue
		}
		if sc.Statement("Sink").Write != nil {
			t.Fatalf("seed %d: sink has a write", seed)
		}
		p := interp.Programify(sc)
		if err := exec.Verify(p, 4, core.Options{}); err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sc.Name, err)
		}
	}
}
