// Package fuzzscop generates random well-formed SCoPs of the shape the
// pipeline transformation targets — consecutive loop nests where each
// nest writes its own array and reads earlier arrays through random
// affine patterns — for differential testing: whatever the detector
// and executors do with the program, the result must match sequential
// execution bit-for-bit.
package fuzzscop

import (
	"fmt"
	"math/rand"

	"repro/internal/isl/aff"
	"repro/internal/scop"
)

// Config bounds the generated programs.
type Config struct {
	MaxNests   int // ≥ 1; default 4
	MaxDepth   int // 1 or 2; default 2
	MaxExtent  int // per-dimension domain size; default 8
	SelfSerial SerialMode
	// Overwrites permits some nests to write non-injectively
	// (A[i/2]-style accesses, declared with WritesOverwriting); such
	// programs need core.Options.AllowOverwrites to be detected.
	Overwrites bool
	// Sink appends a final pure-reader nest (no write access) that
	// consumes random earlier arrays.
	Sink bool
}

// SerialMode controls whether generated nests carry self
// anti-dependences (which serialize them): random per nest, always, or
// never.
type SerialMode int

// Self-serialization knob values.
const (
	SometimesSerial SerialMode = iota
	AlwaysSerial
	NeverSerial
)

func (c Config) withDefaults() Config {
	if c.MaxNests == 0 {
		c.MaxNests = 4
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 2
	}
	if c.MaxExtent == 0 {
		c.MaxExtent = 8
	}
	return c
}

// Random generates one random SCoP. Programs are always valid: each
// nest writes its own array injectively, reads only arrays of earlier
// nests (plus optionally its own), and domains are non-empty.
func Random(r *rand.Rand, cfg Config) *scop.SCoP {
	cfg = cfg.withDefaults()
	nests := 1 + r.Intn(cfg.MaxNests)
	depth := 1 + r.Intn(cfg.MaxDepth)

	b := scop.NewBuilder(fmt.Sprintf("fuzz-%d-%d", nests, depth))
	for k := 0; k < nests; k++ {
		b.Array(arrName(k), depth)
	}

	for k := 0; k < nests; k++ {
		extents := make([]int, depth)
		for d := range extents {
			extents[d] = 2 + r.Intn(cfg.MaxExtent-1)
		}
		name := fmt.Sprintf("S%d", k)
		sb := b.Stmt(name, aff.RectDomain(name, extents...))

		// Write to the nest's own array: usually the injective
		// identity; with Overwrites enabled, sometimes a folding
		// A[i/2]-style access on the innermost dimension.
		idx := make([]aff.Expr, depth)
		for d := range idx {
			idx[d] = aff.Var(depth, d)
		}
		if cfg.Overwrites && r.Intn(2) == 0 {
			idx[depth-1] = aff.FloorDiv(aff.Var(depth, depth-1), 2)
			sb.WritesOverwriting(arrName(k), idx...)
		} else {
			sb.Writes(arrName(k), idx...)
		}

		// Optional self reads (serialize the nest via anti deps).
		serial := false
		switch cfg.SelfSerial {
		case AlwaysSerial:
			serial = true
		case NeverSerial:
		default:
			serial = r.Intn(2) == 0
		}
		if serial {
			shift := make([]aff.Expr, depth)
			for d := range shift {
				if d == depth-1 {
					shift[d] = aff.Linear(1, varCoeffs(depth, d)...)
				} else {
					shift[d] = aff.Var(depth, d)
				}
			}
			sb.Reads(arrName(k), shift...)
		}

		// Cross reads from up to three random earlier nests.
		for n := 0; n < r.Intn(4) && k > 0; n++ {
			src := r.Intn(k)
			idx := make([]aff.Expr, depth)
			for d := range idx {
				stride := 1 + r.Intn(2)
				offset := r.Intn(3) - 1
				coeffs := make([]int, depth)
				coeffs[d] = stride
				idx[d] = aff.Linear(offset, coeffs...)
			}
			sb.Reads(arrName(src), idx...)
		}
	}
	if cfg.Sink && nests > 0 {
		depthS := 1 + r.Intn(cfg.MaxDepth)
		extents := make([]int, depthS)
		for d := range extents {
			extents[d] = 2 + r.Intn(cfg.MaxExtent-1)
		}
		sb := b.Stmt("Sink", aff.RectDomain("Sink", extents...))
		for n := 0; n < 1+r.Intn(3); n++ {
			src := r.Intn(nests)
			idx := make([]aff.Expr, depth)
			for d := range idx {
				coeffs := make([]int, depthS)
				if d < depthS {
					coeffs[d] = 1
				}
				idx[d] = aff.Linear(r.Intn(2), coeffs...)
			}
			sb.Reads(arrName(src), idx...)
		}
	}
	return b.MustBuild()
}

// Stress deterministically generates the large fuzz SCoP the detection
// benchmarks use (core's BenchmarkDetect and cmd/bench-pipeline
// -detect-bench record it as "fuzzstress"): the first seed whose
// program has at least seven statements, so the per-pair and
// per-statement detection phases have real fan-out.
func Stress() *scop.SCoP {
	cfg := Config{
		MaxNests:   8,
		MaxDepth:   2,
		MaxExtent:  24,
		SelfSerial: NeverSerial,
		Sink:       true,
	}
	for seed := int64(0); ; seed++ {
		sc := Random(rand.New(rand.NewSource(seed)), cfg)
		if len(sc.Stmts) >= 7 {
			return sc
		}
	}
}

func arrName(k int) string { return fmt.Sprintf("A%d", k) }

func varCoeffs(depth, d int) []int {
	cs := make([]int, depth)
	cs[d] = 1
	return cs
}
