// Package obsd is the embedded introspection server: a small
// http.Handler that exposes a running session's observability state —
// Prometheus metrics, health, compile-phase timings, the continuous
// sampler's time series, and a streaming Perfetto trace of the most
// recent pipelined run — so detection-as-a-service deployments get
// pull-based, always-on telemetry instead of post-mortem JSON dumps.
//
// Endpoints:
//
//	/metrics       Prometheus text exposition v0.0.4 of the registry
//	/healthz       200 "ok" while the session is open, 503 after Close
//	/debug/phases  active backends + recorded compile/run phase spans (JSON)
//	/debug/series  the continuous sampler's timestamped series (JSON)
//	/debug/trace   Perfetto trace_event JSON of the collected spans
//
// The server reads only point-in-time snapshots (Registry.Snapshot,
// Collector.Spans, Sampler.Samples), so scraping while a pipeline
// executes is race-free and stays off the execution hot path.
package obsd

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/trace"
)

// Session is the introspection surface the server exposes —
// polypipe.Session implements it, and tests may substitute fakes. Any
// accessor may return its zero value; the corresponding endpoint then
// degrades gracefully (404 or an empty document) instead of failing.
type Session interface {
	// Registry returns the metrics registry backing /metrics, or nil.
	Registry() *obs.Registry
	// PhaseSpans returns the recorded compile/run phase timings.
	PhaseSpans() []obs.PhaseSpan
	// Sampler returns the continuous sampler backing /debug/series, or
	// nil.
	Sampler() *export.Sampler
	// TraceSpans returns the task spans of the most recent (or
	// currently running) traced execution.
	TraceSpans() []trace.Span
	// StmtNames maps statement index to display name for the trace.
	StmtNames() map[int]string
	// Backends names the compiled isl backend and the configured
	// detection backend, so /debug/phases reports which algebra served
	// the timed spans.
	Backends() (islBackend, detectBackend string)
	// Healthy reports whether the session is still open.
	Healthy() bool
}

// Server serves a Session's introspection endpoints. Build one with
// New, mount Handler on any mux — or call Serve to listen on an
// address — and Shutdown when done.
type Server struct {
	sess Session
	mux  *http.ServeMux
	srv  *http.Server
	ln   net.Listener
}

// New builds a server over the given session.
func New(sess Session) *Server {
	s := &Server{sess: sess, mux: http.NewServeMux()}
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/debug/phases", s.handlePhases)
	s.mux.HandleFunc("/debug/series", s.handleSeries)
	s.mux.HandleFunc("/debug/trace", s.handleTrace)
	return s
}

// Handler returns the endpoint mux, for mounting on an existing
// server (or an httptest one).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve starts listening on addr (host:port; port 0 picks a free one)
// and serves in a background goroutine until Shutdown. It returns the
// bound address.
func (s *Server) Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obsd: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	go func() {
		// ErrServerClosed is the normal Shutdown result; anything else
		// surfaces on the next scrape as a refused connection.
		_ = s.srv.Serve(ln)
	}()
	return ln.Addr(), nil
}

// Addr returns the bound listen address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown gracefully stops a Serve-started listener, waiting for
// in-flight scrapes up to the context deadline. It is a no-op for
// handler-only servers.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.sess.Registry()
	if reg == nil {
		http.Error(w, "no registry attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = export.WritePrometheus(w, reg.Snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.sess.Healthy() {
		http.Error(w, "closed", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// phaseJSON is one /debug/phases span; durations are nanoseconds and
// starts are offsets from the first span, so the document is
// host-independent.
type phaseJSON struct {
	Name       string `json:"name"`
	StartNS    int64  `json:"start_ns"`
	DurationNS int64  `json:"duration_ns"`
}

// phasesJSON is the /debug/phases document: the backends that served
// the session (the compiled isl set representation and the selected
// detection algebra) plus the recorded spans.
type phasesJSON struct {
	ISLBackend    string      `json:"isl_backend"`
	DetectBackend string      `json:"detect_backend"`
	Phases        []phaseJSON `json:"phases"`
}

func (s *Server) handlePhases(w http.ResponseWriter, r *http.Request) {
	spans := s.sess.PhaseSpans()
	out := make([]phaseJSON, 0, len(spans))
	var base time.Time
	for _, sp := range spans {
		if base.IsZero() || sp.Start.Before(base) {
			base = sp.Start
		}
	}
	for _, sp := range spans {
		out = append(out, phaseJSON{
			Name:       sp.Name,
			StartNS:    sp.Start.Sub(base).Nanoseconds(),
			DurationNS: sp.Duration.Nanoseconds(),
		})
	}
	islBackend, detectBackend := s.sess.Backends()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(phasesJSON{
		ISLBackend:    islBackend,
		DetectBackend: detectBackend,
		Phases:        out,
	})
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	sampler := s.sess.Sampler()
	if sampler == nil {
		http.Error(w, "no sampler attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = sampler.WriteJSON(w)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = trace.WritePerfetto(w, s.sess.TraceSpans(), trace.PerfettoOptions{
		Names: s.sess.StmtNames(),
	})
}
