package obsd_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/obsd"
	"repro/internal/trace"
	"repro/polypipe"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// fakeSession is a minimal obsd.Session for endpoint-level tests.
type fakeSession struct {
	reg     *obs.Registry
	sampler *export.Sampler
	phases  []obs.PhaseSpan
	spans   []trace.Span
	healthy bool
}

func (f *fakeSession) Registry() *obs.Registry     { return f.reg }
func (f *fakeSession) PhaseSpans() []obs.PhaseSpan { return f.phases }
func (f *fakeSession) Sampler() *export.Sampler    { return f.sampler }
func (f *fakeSession) TraceSpans() []trace.Span    { return f.spans }
func (f *fakeSession) StmtNames() map[int]string   { return map[int]string{0: "S0"} }
func (f *fakeSession) Backends() (string, string)  { return "fake-isl", "explicit" }
func (f *fakeSession) Healthy() bool               { return f.healthy }

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestEndpointsDegradeGracefully(t *testing.T) {
	f := &fakeSession{healthy: true}
	ts := httptest.NewServer(obsd.New(f).Handler())
	defer ts.Close()

	if code, _ := get(t, ts.URL+"/metrics"); code != http.StatusNotFound {
		t.Errorf("/metrics without registry = %d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/debug/series"); code != http.StatusNotFound {
		t.Errorf("/debug/series without sampler = %d, want 404", code)
	}
	if code, body := get(t, ts.URL+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, body := get(t, ts.URL+"/debug/phases"); code != http.StatusOK {
		t.Errorf("/debug/phases empty = %d, want 200", code)
	} else {
		var doc struct {
			ISL    string           `json:"isl_backend"`
			Detect string           `json:"detect_backend"`
			Phases []map[string]any `json:"phases"`
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("/debug/phases JSON: %v", err)
		}
		if doc.ISL != "fake-isl" || doc.Detect != "explicit" || len(doc.Phases) != 0 {
			t.Errorf("/debug/phases empty = %+v, want fake-isl/explicit with no spans", doc)
		}
	}
	if code, body := get(t, ts.URL+"/debug/trace"); code != http.StatusOK || !strings.Contains(body, "traceEvents") {
		t.Errorf("/debug/trace empty = %d %q, want a trace_event document", code, body)
	}

	f.healthy = false
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("/healthz unhealthy = %d, want 503", code)
	}
}

// fixedRunServer builds a session with live telemetry, executes the
// fixed Table-9 run twice (the second run exercises IR reuse so the
// runtime.ir_reuse counter exists), and mounts its introspection
// handler on an httptest server.
func fixedRunServer(t *testing.T) (*polypipe.Session, *httptest.Server) {
	t.Helper()
	p, err := polypipe.Table9Program("P4", 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := polypipe.NewSession(
		polypipe.WithWorkers(2),
		polypipe.WithCache(0),
		polypipe.WithSampler(time.Hour, 8), // manual ticks only: deterministic sample count
	)
	for i := 0; i < 2; i++ {
		if _, err := s.Run(polypipe.ModePipelined, p); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(obsd.New(s).Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

var valueRE = regexp.MustCompile(` -?[0-9]+(\.[0-9]+)?$`)

// normalizeExposition replaces every sample value with "V", leaving
// names, labels, and comments — the scrape's shape — intact.
func normalizeExposition(body string) string {
	var out []string
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !strings.HasPrefix(line, "#") {
			line = valueRE.ReplaceAllString(line, " V")
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n") + "\n"
}

// TestMetricsGolden locks the /metrics scrape of a fixed Table-9 run:
// with values normalized, the exposed family set — detect, cache,
// runtime, and trace families included — must match the committed
// golden byte for byte.
func TestMetricsGolden(t *testing.T) {
	_, ts := fixedRunServer(t)
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", code)
	}
	got := normalizeExposition(body)
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./internal/obsd/ -run Golden -update)", err)
	}
	if got != string(want) {
		t.Errorf("normalized /metrics diverges from %s (regenerate with -update if intended)\ngot:\n%s", golden, got)
	}
	for _, fam := range []string{
		"# TYPE detect_statements counter",
		"# TYPE cache_hits counter",
		"# TYPE cache_entries gauge",
		"# TYPE runtime_executed counter",
		"# TYPE runtime_queue_depth gauge",
		"# TYPE runtime_task_ns histogram",
		"# TYPE trace_events_dropped counter",
		`runtime_task_ns_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(body, fam) {
			t.Errorf("/metrics missing %q", fam)
		}
	}
}

func TestDebugEndpointsOnFixedRun(t *testing.T) {
	s, ts := fixedRunServer(t)

	// Two manual sampler ticks -> two distinct timestamped samples.
	s.Sampler().TakeSample(time.Time{})
	time.Sleep(2 * time.Millisecond)
	s.Sampler().TakeSample(time.Time{})
	code, body := get(t, ts.URL+"/debug/series")
	if code != http.StatusOK {
		t.Fatalf("/debug/series = %d, want 200", code)
	}
	var series export.Series
	if err := json.Unmarshal([]byte(body), &series); err != nil {
		t.Fatalf("series JSON: %v", err)
	}
	if len(series.Samples) < 2 {
		t.Fatalf("series has %d samples, want >= 2", len(series.Samples))
	}
	last := series.Samples[len(series.Samples)-1]
	if last.Counters["runtime.executed"] == 0 {
		t.Error("sampler did not capture runtime.executed")
	}
	if series.Samples[0].When.Equal(last.When) {
		t.Error("want distinct sample timestamps")
	}

	code, body = get(t, ts.URL+"/debug/phases")
	if code != http.StatusOK {
		t.Fatalf("/debug/phases = %d, want 200", code)
	}
	var phasesDoc struct {
		ISL    string           `json:"isl_backend"`
		Detect string           `json:"detect_backend"`
		Phases []map[string]any `json:"phases"`
	}
	if err := json.Unmarshal([]byte(body), &phasesDoc); err != nil {
		t.Fatalf("phases JSON: %v", err)
	}
	if phasesDoc.ISL == "" || phasesDoc.Detect != "explicit" {
		t.Errorf("/debug/phases backends = %q/%q, want a named isl backend and %q",
			phasesDoc.ISL, phasesDoc.Detect, "explicit")
	}
	names := map[string]bool{}
	for _, ph := range phasesDoc.Phases {
		names[ph["name"].(string)] = true
	}
	for _, want := range []string{"detect", "codegen.schedule_tree"} {
		found := false
		for n := range names {
			if strings.HasPrefix(n, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("/debug/phases missing a %q* span (got %v)", want, names)
		}
	}

	code, body = get(t, ts.URL+"/debug/trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace = %d, want 200", code)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Error("/debug/trace has no events for a traced run")
	}
}

// TestConcurrentScrapeWhileExecuting hammers every endpoint while the
// session executes pipelined runs — the acceptance race test (run
// under -race by make race).
func TestConcurrentScrapeWhileExecuting(t *testing.T) {
	p, err := polypipe.Table9Program("P4", 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := polypipe.NewSession(
		polypipe.WithWorkers(2),
		polypipe.WithCache(0),
		polypipe.WithSampler(time.Millisecond, 32),
	)
	defer s.Close()
	ts := httptest.NewServer(obsd.New(s).Handler())
	defer ts.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := s.Run(polypipe.ModePipelined, p); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				for _, ep := range []string{"/metrics", "/healthz", "/debug/series", "/debug/phases", "/debug/trace"} {
					resp, err := http.Get(ts.URL + ep)
					if err != nil {
						t.Errorf("GET %s: %v", ep, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("GET %s = %d while executing", ep, resp.StatusCode)
					}
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(done)
	wg.Wait()
}

// TestHealthzAcrossClose covers the served lifecycle end to end on a
// real listener: healthy scrape, Close, then 503/refused.
func TestHealthzAcrossClose(t *testing.T) {
	s := polypipe.NewSession(polypipe.WithIntrospection("127.0.0.1:0"))
	if err := s.IntrospectionError(); err != nil {
		t.Fatal(err)
	}
	addr := s.IntrospectionAddr()
	if addr == "" {
		t.Fatal("no bound introspection address")
	}
	code, body := get(t, "http://"+addr+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz before close = %d %q", code, body)
	}
	if code, _ := get(t, "http://"+addr+"/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics before close = %d", code)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	// After Close the listener is down: the scrape must fail outright
	// (or, if a racing in-flight connection sneaks through the drain,
	// report 503).
	resp, err := http.Get("http://" + addr + "/healthz")
	if err == nil {
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("/healthz after close = %d, want refused or 503", resp.StatusCode)
		}
	}
	if !s.Healthy() {
		return
	}
	t.Fatal("session still healthy after Close")
}

func ExampleNew() {
	s := polypipe.NewSession(polypipe.WithIntrospection("127.0.0.1:0"))
	defer s.Close()
	fmt.Println(s.IntrospectionError() == nil, s.IntrospectionAddr() != "")
	// Output: true true
}
