package scop

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/isl/aff"
)

func envelopeTestSCoP(t *testing.T) *SCoP {
	t.Helper()
	b := NewBuilder("env")
	b.Array("A", 2)
	b.Array("B", 2)
	b.Stmt("S1", aff.RectDomain("S1", 4, 4)).
		Writes("A", aff.Var(2, 0), aff.Var(2, 1))
	b.Stmt("S2", aff.RectDomain("S2", 4, 4)).
		Writes("B", aff.Var(2, 0), aff.Var(2, 1)).
		Reads("A", aff.Var(2, 0), aff.Var(2, 1))
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestEnvelopeRoundTrip proves the enveloped form reproduces the same
// SCoP (same fingerprint) as the bare form it wraps.
func TestEnvelopeRoundTrip(t *testing.T) {
	sc := envelopeTestSCoP(t)
	data, err := ToJSONEnveloped(sc)
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Schema string          `json:"schema"`
		Scop   json.RawMessage `json:"scop"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("envelope is not valid JSON: %v\n%s", err, data)
	}
	if env.Schema != SchemaV1 {
		t.Fatalf("schema = %q, want %q", env.Schema, SchemaV1)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatalf("FromJSON(enveloped): %v", err)
	}
	if back.Fingerprint() != sc.Fingerprint() {
		t.Fatalf("enveloped round trip changed the fingerprint: %s vs %s",
			back.Fingerprint(), sc.Fingerprint())
	}
}

// TestEnvelopeBareLegacyAccepted proves bare documents (the pre-v1
// form) still parse, and produce the same SCoP as their envelope.
func TestEnvelopeBareLegacyAccepted(t *testing.T) {
	sc := envelopeTestSCoP(t)
	bare, err := ToJSON(sc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(bare)
	if err != nil {
		t.Fatalf("FromJSON(bare): %v", err)
	}
	if back.Fingerprint() != sc.Fingerprint() {
		t.Fatal("bare round trip changed the fingerprint")
	}
}

func TestEnvelopeUnknownSchemaRejected(t *testing.T) {
	for _, schema := range []string{"scop/v2", "scop/v0", "bogus"} {
		data := []byte(`{"schema": "` + schema + `", "scop": {"name": "x"}}`)
		_, err := FromJSON(data)
		var se *SchemaError
		if !errors.As(err, &se) {
			t.Fatalf("schema %q: err = %v, want *SchemaError", schema, err)
		}
		if se.Schema != schema {
			t.Fatalf("SchemaError.Schema = %q, want %q", se.Schema, schema)
		}
		if !strings.Contains(err.Error(), schema) {
			t.Fatalf("error %q does not name the schema", err)
		}
	}
}

func TestEnvelopeMissingPayloadRejected(t *testing.T) {
	if _, err := FromJSON([]byte(`{"schema": "scop/v1"}`)); err == nil {
		t.Fatal("envelope without scop payload accepted")
	}
}
