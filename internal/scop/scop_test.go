package scop

import (
	"strings"
	"testing"

	"repro/internal/isl"
	"repro/internal/isl/aff"
)

// buildListing1 constructs the paper's Listing 1 SCoP for a given N:
//
//	for(i=0;i<N-1;i++) for(j=0;j<N-1;j++)
//	  S: A[i][j] = f(A[i][j], A[i][j+1], A[i+1][j+1]);
//	for(i=0;i<N/2-1;i++) for(j=0;j<N/2-1;j++)
//	  R: B[i][j] = g(A[i][2j], B[i][j+1], B[i+1][j+1], B[i][j]);
func buildListing1(t *testing.T, n int) *SCoP {
	t.Helper()
	b := NewBuilder("listing1")
	b.Array("A", 2).Array("B", 2)
	b.Stmt("S", aff.RectDomain("S", n-1, n-1)).
		Writes("A", aff.Var(2, 0), aff.Var(2, 1)).
		Reads("A", aff.Var(2, 0), aff.Var(2, 1)).
		Reads("A", aff.Var(2, 0), aff.Linear(1, 0, 1)).
		Reads("A", aff.Linear(1, 1, 0), aff.Linear(1, 0, 1))
	b.Stmt("R", aff.RectDomain("R", n/2-1, n/2-1)).
		Writes("B", aff.Var(2, 0), aff.Var(2, 1)).
		Reads("A", aff.Var(2, 0), aff.Linear(0, 0, 2)).
		Reads("B", aff.Var(2, 0), aff.Linear(1, 0, 1)).
		Reads("B", aff.Linear(1, 1, 0), aff.Linear(1, 0, 1)).
		Reads("B", aff.Var(2, 0), aff.Var(2, 1))
	sc, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return sc
}

func TestBuildListing1(t *testing.T) {
	sc := buildListing1(t, 20)
	if len(sc.Stmts) != 2 {
		t.Fatalf("statements = %d", len(sc.Stmts))
	}
	s := sc.Statement("S")
	r := sc.Statement("R")
	if s == nil || r == nil {
		t.Fatal("missing statements")
	}
	if s.Domain.Card() != 19*19 {
		t.Errorf("S domain card = %d, want %d", s.Domain.Card(), 19*19)
	}
	if r.Domain.Card() != 9*9 {
		t.Errorf("R domain card = %d, want %d", r.Domain.Card(), 9*9)
	}
	if got := r.ReadsFrom("A"); len(got) != 1 {
		t.Errorf("R reads from A: %d relations", len(got))
	}
	if got := r.ReadsFrom("B"); len(got) != 3 {
		t.Errorf("R reads from B: %d relations", len(got))
	}
	// R reads A[i][2j]: instance (1, 3) reads A[1][6].
	aRead := r.ReadsFrom("A")[0]
	if got := aRead.Image(isl.NewVec(1, 3)); !got.Eq(isl.NewVec(1, 6)) {
		t.Errorf("A read image = %v", got)
	}
	if sc.TotalIterations() != 19*19+9*9 {
		t.Errorf("TotalIterations = %d", sc.TotalIterations())
	}
	if sc.HasBodies() {
		t.Error("analysis-only scop reports bodies")
	}
}

func TestStatementLookupMissing(t *testing.T) {
	sc := buildListing1(t, 8)
	if sc.Statement("nope") != nil {
		t.Fatal("found nonexistent statement")
	}
}

func TestBuilderRejectsDuplicateArray(t *testing.T) {
	_, err := NewBuilder("x").Array("A", 1).Array("A", 2).Build()
	if err == nil || !strings.Contains(err.Error(), "declared twice") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuilderRejectsUndeclaredArray(t *testing.T) {
	b := NewBuilder("x")
	b.Stmt("S", aff.RectDomain("S", 4)).Writes("A", aff.Var(1, 0))
	_, err := b.Build()
	if err == nil || !strings.Contains(err.Error(), "undeclared array") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuilderRejectsTwoWrites(t *testing.T) {
	b := NewBuilder("x")
	b.Array("A", 1)
	b.Stmt("S", aff.RectDomain("S", 4)).
		Writes("A", aff.Var(1, 0)).
		Writes("A", aff.Var(1, 0))
	_, err := b.Build()
	if err == nil || !strings.Contains(err.Error(), "two writes") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuilderRejectsNonInjectiveWrite(t *testing.T) {
	b := NewBuilder("x")
	b.Array("A", 1)
	// A[i/2] write collides for consecutive i.
	b.Stmt("S", aff.RectDomain("S", 4)).
		Writes("A", aff.FloorDiv(aff.Var(1, 0), 2))
	_, err := b.Build()
	if err == nil || !strings.Contains(err.Error(), "not injective") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuilderRejectsArityMismatch(t *testing.T) {
	b := NewBuilder("x")
	b.Array("A", 2)
	b.Stmt("S", aff.RectDomain("S", 4)).
		Writes("A", aff.Var(2, 0), aff.Var(2, 1)) // domain depth 1, exprs arity 2
	_, err := b.Build()
	if err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuilderRejectsWrongIndexCount(t *testing.T) {
	b := NewBuilder("x")
	b.Array("A", 2)
	b.Stmt("S", aff.RectDomain("S", 4)).
		Writes("A", aff.Var(1, 0)) // one index for 2-D array
	_, err := b.Build()
	if err == nil || !strings.Contains(err.Error(), "dimensions") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuilderRejectsEmptyDomain(t *testing.T) {
	b := NewBuilder("x")
	b.Array("A", 1)
	b.Stmt("S", aff.RectDomain("S", 0)).Writes("A", aff.Var(1, 0))
	_, err := b.Build()
	if err == nil || !strings.Contains(err.Error(), "empty iteration domain") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuilderRejectsMismatchedSpaceName(t *testing.T) {
	b := NewBuilder("x")
	b.Array("A", 1)
	b.Stmt("S", aff.RectDomain("T", 4)).Writes("A", aff.Var(1, 0))
	_, err := b.Build()
	if err == nil || !strings.Contains(err.Error(), "name them identically") {
		t.Fatalf("err = %v", err)
	}
}

func TestBodiesRunnable(t *testing.T) {
	var count int
	b := NewBuilder("x")
	b.Array("A", 1)
	b.Stmt("S", aff.RectDomain("S", 5)).
		Writes("A", aff.Var(1, 0)).
		Body(func(iv isl.Vec) { count += iv[0] })
	sc := b.MustBuild()
	if !sc.HasBodies() {
		t.Fatal("HasBodies false")
	}
	sc.Stmts[0].Domain.Foreach(func(v isl.Vec) bool {
		sc.Stmts[0].Body(v)
		return true
	})
	if count != 0+1+2+3+4 {
		t.Fatalf("count = %d", count)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder("x")
	b.Stmt("S", nil)
	b.MustBuild()
}
