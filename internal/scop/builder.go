package scop

import (
	"fmt"

	"repro/internal/isl/aff"
)

// Builder assembles a SCoP incrementally. Typical use:
//
//	b := scop.NewBuilder("listing1")
//	b.Array("A", 2)
//	b.Stmt("S", aff.RectDomain("S", n, n)).
//	    Writes("A", aff.Var(2, 0), aff.Var(2, 1)).
//	    Reads("A", aff.Var(2, 0), aff.Linear(1, 0, 1)).
//	    Body(func(iv isl.Vec) { ... })
//	sc, err := b.Build()
type Builder struct {
	scop *SCoP
	err  error
}

// NewBuilder returns a builder for a SCoP with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{scop: &SCoP{
		Name:   name,
		Arrays: make(map[string]*Array),
	}}
}

// Array declares an array (memory space) with the given index-space
// dimensionality.
func (b *Builder) Array(name string, dim int) *Builder {
	if b.err != nil {
		return b
	}
	if _, dup := b.scop.Arrays[name]; dup {
		b.err = fmt.Errorf("scop builder: array %q declared twice", name)
		return b
	}
	if dim <= 0 {
		b.err = fmt.Errorf("scop builder: array %q has non-positive dimension %d", name, dim)
		return b
	}
	b.scop.Arrays[name] = &Array{Name: name, Dim: dim}
	return b
}

// StmtBuilder configures one statement of a SCoP under construction.
type StmtBuilder struct {
	b    *Builder
	stmt *Statement
}

// Stmt starts a new statement with the given name and symbolic domain.
// The domain is enumerated immediately. Statements are ordered by the
// sequence of Stmt calls, which must match textual program order.
func (b *Builder) Stmt(name string, spec *aff.Domain) *StmtBuilder {
	st := &Statement{
		Name:  name,
		Index: len(b.scop.Stmts),
		Spec:  spec,
	}
	if b.err == nil {
		if spec == nil {
			b.err = fmt.Errorf("scop builder: statement %q has nil domain", name)
		} else {
			if spec.Space.Name != name {
				b.err = fmt.Errorf("scop builder: statement %q domain is in space %q; name them identically",
					name, spec.Space.Name)
			}
			st.Domain = spec.Enumerate()
		}
	}
	b.scop.Stmts = append(b.scop.Stmts, st)
	return &StmtBuilder{b: b, stmt: st}
}

// Writes declares the statement's single write access.
func (sb *StmtBuilder) Writes(array string, idx ...aff.Expr) *StmtBuilder {
	if sb.b.err != nil {
		return sb
	}
	if sb.stmt.Write != nil {
		sb.b.err = fmt.Errorf("scop builder: statement %q declares two writes", sb.stmt.Name)
		return sb
	}
	ref, err := sb.ref(array, idx)
	if err != nil {
		sb.b.err = err
		return sb
	}
	sb.stmt.Write = ref
	return sb
}

// WritesOverwriting declares the statement's single write access and
// permits it to be non-injective (over-writes). Pipeline detection on
// such statements needs the relaxed last-writer extension
// (core.Options.AllowOverwrites).
func (sb *StmtBuilder) WritesOverwriting(array string, idx ...aff.Expr) *StmtBuilder {
	sb.Writes(array, idx...)
	if sb.b.err == nil && sb.stmt.Write != nil {
		sb.stmt.Write.MayOverwrite = true
	}
	return sb
}

// Reads declares one read access of the statement. Call it once per
// distinct read.
func (sb *StmtBuilder) Reads(array string, idx ...aff.Expr) *StmtBuilder {
	if sb.b.err != nil {
		return sb
	}
	ref, err := sb.ref(array, idx)
	if err != nil {
		sb.b.err = err
		return sb
	}
	sb.stmt.Reads = append(sb.stmt.Reads, *ref)
	return sb
}

func (sb *StmtBuilder) ref(array string, idx []aff.Expr) (*AccessRef, error) {
	for _, e := range idx {
		if e.NVars != sb.stmt.Depth() {
			return nil, fmt.Errorf("scop builder: statement %q access to %q has index arity %d, domain depth is %d",
				sb.stmt.Name, array, e.NVars, sb.stmt.Depth())
		}
	}
	acc := aff.NewAccess(array, idx...)
	return &AccessRef{Access: acc, Rel: acc.Relation(sb.stmt.Domain)}, nil
}

// Body attaches the executable body of the statement.
func (sb *StmtBuilder) Body(fn Body) *StmtBuilder {
	sb.stmt.Body = fn
	return sb
}

// Builder returns the parent builder, for fluent chaining across
// statements.
func (sb *StmtBuilder) Builder() *Builder { return sb.b }

// Build validates and returns the SCoP.
func (b *Builder) Build() (*SCoP, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.scop.Validate(); err != nil {
		return nil, err
	}
	return b.scop, nil
}

// MustBuild is Build for tests and examples with static inputs; it
// panics on error.
func (b *Builder) MustBuild() *SCoP {
	sc, err := b.Build()
	if err != nil {
		panic(err)
	}
	return sc
}
