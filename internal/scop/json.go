package scop

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/isl/aff"
)

// JSON interchange format for analysis-only SCoPs: a stable, explicit
// description of arrays, statements, symbolic domains, and affine
// accesses, so SCoPs can be exported from one tool and re-imported by
// another (or checked into tests as goldens). Executable bodies are
// not serialized; attach them afterwards (e.g. interp.Programify).

type jsonSCoP struct {
	Name   string      `json:"name"`
	Arrays []jsonArray `json:"arrays"`
	Stmts  []jsonStmt  `json:"statements"`
}

type jsonArray struct {
	Name string `json:"name"`
	Dim  int    `json:"dim"`
}

type jsonStmt struct {
	Name   string       `json:"name"`
	Bounds []jsonBound  `json:"bounds"`
	Write  *jsonAccess  `json:"write,omitempty"`
	Reads  []jsonAccess `json:"reads,omitempty"`
}

type jsonBound struct {
	Lo jsonExpr `json:"lo"`
	Hi jsonExpr `json:"hi"`
}

type jsonAccess struct {
	Array        string     `json:"array"`
	Index        []jsonExpr `json:"index"`
	MayOverwrite bool       `json:"mayOverwrite,omitempty"`
}

type jsonExpr struct {
	NVars  int       `json:"nvars"`
	Const  int       `json:"const,omitempty"`
	Coeffs []int     `json:"coeffs,omitempty"`
	Divs   []jsonDiv `json:"divs,omitempty"`
}

type jsonDiv struct {
	Coef  int      `json:"coef"`
	Inner jsonExpr `json:"inner"`
	Den   int      `json:"den"`
}

func exprToJSON(e aff.Expr) jsonExpr {
	je := jsonExpr{NVars: e.NVars, Const: e.Const, Coeffs: e.Coeffs}
	for _, d := range e.Divs {
		je.Divs = append(je.Divs, jsonDiv{Coef: d.Coef, Inner: exprToJSON(d.Inner), Den: d.Den})
	}
	return je
}

func exprFromJSON(je jsonExpr) aff.Expr {
	e := aff.Expr{NVars: je.NVars, Const: je.Const, Coeffs: je.Coeffs}
	for _, d := range je.Divs {
		e.Divs = append(e.Divs, aff.DivTerm{Coef: d.Coef, Inner: exprFromJSON(d.Inner), Den: d.Den})
	}
	return e
}

// ToJSON serializes the SCoP's polyhedral description.
func ToJSON(sc *SCoP) ([]byte, error) {
	out := jsonSCoP{Name: sc.Name}
	names := make([]string, 0, len(sc.Arrays))
	for name := range sc.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out.Arrays = append(out.Arrays, jsonArray{Name: name, Dim: sc.Arrays[name].Dim})
	}
	for _, s := range sc.Stmts {
		if s.Spec == nil {
			return nil, fmt.Errorf("scop: statement %q has no symbolic domain to serialize", s.Name)
		}
		if len(s.Spec.Constraints) != 0 {
			return nil, fmt.Errorf("scop: statement %q has extra domain constraints, not supported by the JSON format", s.Name)
		}
		js := jsonStmt{Name: s.Name}
		for _, b := range s.Spec.Bounds {
			js.Bounds = append(js.Bounds, jsonBound{Lo: exprToJSON(b.Lo), Hi: exprToJSON(b.Hi)})
		}
		if s.Write != nil {
			js.Write = &jsonAccess{
				Array:        s.Write.Array(),
				Index:        exprsToJSON(s.Write.Access.Exprs),
				MayOverwrite: s.Write.MayOverwrite,
			}
		}
		for i := range s.Reads {
			js.Reads = append(js.Reads, jsonAccess{
				Array: s.Reads[i].Array(),
				Index: exprsToJSON(s.Reads[i].Access.Exprs),
			})
		}
		out.Stmts = append(out.Stmts, js)
	}
	return json.MarshalIndent(out, "", "  ")
}

func exprsToJSON(es []aff.Expr) []jsonExpr {
	out := make([]jsonExpr, len(es))
	for i, e := range es {
		out[i] = exprToJSON(e)
	}
	return out
}

// FromJSON rebuilds an analysis-only SCoP from its JSON description.
// It accepts both the bare legacy document and the scop/v1 envelope
// (see ToJSONEnveloped); an envelope with an unrecognized schema fails
// with *SchemaError.
func FromJSON(data []byte) (*SCoP, error) {
	data, err := unwrapEnvelope(data)
	if err != nil {
		return nil, err
	}
	var in jsonSCoP
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("scop: bad JSON: %w", err)
	}
	b := NewBuilder(in.Name)
	for _, arr := range in.Arrays {
		b.Array(arr.Name, arr.Dim)
	}
	for _, js := range in.Stmts {
		bounds := make([]aff.LoopBound, len(js.Bounds))
		for d, jb := range js.Bounds {
			if jb.Lo.NVars != d || jb.Hi.NVars != d {
				return nil, fmt.Errorf("scop: statement %q bound %d has arity lo=%d hi=%d, want %d",
					js.Name, d, jb.Lo.NVars, jb.Hi.NVars, d)
			}
			bounds[d] = aff.LoopBound{Lo: exprFromJSON(jb.Lo), Hi: exprFromJSON(jb.Hi)}
		}
		sb := b.Stmt(js.Name, aff.NewDomain(js.Name, bounds...))
		if js.Write != nil {
			if js.Write.MayOverwrite {
				sb.WritesOverwriting(js.Write.Array, exprsFromJSON(js.Write.Index)...)
			} else {
				sb.Writes(js.Write.Array, exprsFromJSON(js.Write.Index)...)
			}
		}
		for _, rd := range js.Reads {
			sb.Reads(rd.Array, exprsFromJSON(rd.Index)...)
		}
	}
	return b.Build()
}

func exprsFromJSON(jes []jsonExpr) []aff.Expr {
	out := make([]aff.Expr, len(jes))
	for i, je := range jes {
		out[i] = exprFromJSON(je)
	}
	return out
}
