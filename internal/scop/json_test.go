package scop

import (
	"strings"
	"testing"

	"repro/internal/isl/aff"
)

func buildJSONFixture(t *testing.T) *SCoP {
	t.Helper()
	b := NewBuilder("fixture")
	b.Array("A", 2).Array("B", 1).Array("H", 1)
	b.Stmt("S", aff.NewDomain("S",
		aff.ConstBound(0, 0, 6),
		aff.LoopBound{Lo: aff.Const(1, 0), Hi: aff.Linear(1, 1)}, // triangular
	)).
		Writes("A", aff.Var(2, 0), aff.Var(2, 1)).
		Reads("A", aff.Var(2, 0), aff.Linear(1, 0, 1))
	b.Stmt("T", aff.RectDomain("T", 6)).
		Writes("B", aff.Var(1, 0)).
		Reads("A", aff.Var(1, 0), aff.Const(1, 0))
	b.Stmt("U", aff.RectDomain("U", 12)).
		WritesOverwriting("H", aff.FloorDiv(aff.Var(1, 0), 3)).
		Reads("B", aff.FloorDiv(aff.Var(1, 0), 2))
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestJSONRoundTrip(t *testing.T) {
	sc := buildJSONFixture(t)
	data, err := ToJSON(sc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatalf("FromJSON: %v\n%s", err, data)
	}
	if back.Name != sc.Name || len(back.Stmts) != len(sc.Stmts) || len(back.Arrays) != len(sc.Arrays) {
		t.Fatal("shape differs after round trip")
	}
	for i, s := range sc.Stmts {
		got := back.Stmts[i]
		if got.Name != s.Name {
			t.Fatalf("stmt %d name %q != %q", i, got.Name, s.Name)
		}
		if !got.Domain.Equal(s.Domain) {
			t.Fatalf("stmt %s domain differs after round trip", s.Name)
		}
		if (got.Write == nil) != (s.Write == nil) {
			t.Fatalf("stmt %s write presence differs", s.Name)
		}
		if s.Write != nil {
			if !got.Write.Rel.Equal(s.Write.Rel) {
				t.Fatalf("stmt %s write relation differs", s.Name)
			}
			if got.Write.MayOverwrite != s.Write.MayOverwrite {
				t.Fatalf("stmt %s MayOverwrite flag lost", s.Name)
			}
		}
		if len(got.Reads) != len(s.Reads) {
			t.Fatalf("stmt %s read count differs", s.Name)
		}
		for k := range s.Reads {
			if !got.Reads[k].Rel.Equal(s.Reads[k].Rel) {
				t.Fatalf("stmt %s read %d differs", s.Name, k)
			}
		}
	}
	// Serialization is deterministic.
	data2, err := ToJSON(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("JSON not canonical across round trips")
	}
}

func TestFromJSONErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":   `{]`,
		"badArity":  `{"name":"x","arrays":[{"name":"A","dim":1}],"statements":[{"name":"S","bounds":[{"lo":{"nvars":1},"hi":{"nvars":0,"const":4}}],"write":{"array":"A","index":[{"nvars":1,"coeffs":[1]}]}}]}`,
		"undeclArr": `{"name":"x","arrays":[],"statements":[{"name":"S","bounds":[{"lo":{"nvars":0},"hi":{"nvars":0,"const":4}}],"write":{"array":"A","index":[{"nvars":1,"coeffs":[1]}]}}]}`,
	}
	for name, src := range cases {
		if _, err := FromJSON([]byte(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestToJSONRequiresSpec(t *testing.T) {
	sc := buildJSONFixture(t)
	sc.Stmts[0].Spec = nil
	if _, err := ToJSON(sc); err == nil || !strings.Contains(err.Error(), "symbolic domain") {
		t.Fatalf("err = %v", err)
	}
}
