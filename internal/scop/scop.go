// Package scop defines the polyhedral intermediate representation the
// pipeline detector operates on: a static control part (SCoP) made of
// consecutive loop nests, each contributing one statement with an
// iteration domain, affine memory accesses, and an executable body.
//
// The representation plays the role of Polly's SCoP extracted from
// LLVM-IR. It can be constructed programmatically with Builder or
// parsed from the small C-like DSL in package lang.
package scop

import (
	"fmt"
	"sync"

	"repro/internal/isl"
	"repro/internal/isl/aff"
)

// Array describes one memory space accessed by the SCoP. Dim is the
// dimensionality of the index tuples used by access relations; it need
// not equal the declared dimensionality of the underlying storage (for
// example, chained matrix products access row-granular memory with
// 1-dimensional indices).
type Array struct {
	Name string
	Dim  int
}

// Body executes one dynamic instance of a statement. The iteration
// vector identifies the instance; the closure captures whatever data
// the statement touches. Bodies must be safe to call concurrently for
// *different* iteration vectors as long as the polyhedral dependences
// are respected.
type Body func(iter isl.Vec)

// AccessRef is one memory access of a statement: the symbolic affine
// access plus its enumerated relation from the statement's iteration
// domain to the array's index space.
type AccessRef struct {
	Access aff.Access
	Rel    *isl.Map
	// MayOverwrite marks a write access that is allowed to be
	// non-injective (several iterations writing one cell). The paper's
	// algorithm assumes injective writes; the relaxed extension (§7)
	// pipelines against the last writer of each cell instead.
	MayOverwrite bool
}

// Array returns the name of the accessed array.
func (a AccessRef) Array() string { return a.Access.Array }

// Statement is one loop nest's statement: its iteration domain, its
// single write access (the paper assumes one injective write per
// statement), its read accesses, and its executable body.
type Statement struct {
	Name   string
	Index  int // position in textual program order
	Domain *isl.Set
	Spec   *aff.Domain // symbolic domain; retained for printing/codegen
	Write  *AccessRef  // nil for pure-read statements
	Reads  []AccessRef
	Body   Body // nil for analysis-only SCoPs
}

// Space returns the statement's iteration space.
func (s *Statement) Space() isl.Space { return s.Domain.Space() }

// Depth returns the loop-nest depth (domain dimensionality).
func (s *Statement) Depth() int { return s.Domain.Space().Dim }

// ReadsFrom returns the read relations of s that target the named
// array.
func (s *Statement) ReadsFrom(array string) []*isl.Map {
	var rels []*isl.Map
	for i := range s.Reads {
		if s.Reads[i].Array() == array {
			rels = append(rels, s.Reads[i].Rel)
		}
	}
	return rels
}

// SCoP is a static control part: an ordered sequence of statements
// (one per loop nest) over a set of arrays.
type SCoP struct {
	Name   string
	Arrays map[string]*Array
	Stmts  []*Statement

	// fp memoizes Fingerprint; fpOnce makes the first computation the
	// only one, so concurrent fingerprinting of a shared instance never
	// races on the relations' lazy ordering caches.
	fpOnce sync.Once
	fp     Fingerprint
}

// Statement returns the statement with the given name, or nil.
func (sc *SCoP) Statement(name string) *Statement {
	for _, s := range sc.Stmts {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Validate checks the structural invariants the pipeline algorithms
// rely on: unique statement names, declared arrays, access relations
// with matching spaces, and injective writes (the paper's no-overwrite
// assumption).
func (sc *SCoP) Validate() error { return sc.validate(true) }

// ValidateShallow checks the same structural invariants as Validate
// but skips the write-injectivity scan, the only check whose cost
// grows with the iteration domain. The symbolic detection backend
// (internal/core's DetectSymbolic) uses it and establishes injectivity
// from the write's closed form instead, keeping its cost independent
// of domain size.
func (sc *SCoP) ValidateShallow() error { return sc.validate(false) }

func (sc *SCoP) validate(injective bool) error {
	seen := make(map[string]bool)
	for i, s := range sc.Stmts {
		if s.Name == "" {
			return fmt.Errorf("scop %q: statement %d has no name", sc.Name, i)
		}
		if seen[s.Name] {
			return fmt.Errorf("scop %q: duplicate statement name %q", sc.Name, s.Name)
		}
		seen[s.Name] = true
		if s.Index != i {
			return fmt.Errorf("scop %q: statement %q has index %d, expected %d", sc.Name, s.Name, s.Index, i)
		}
		if s.Domain == nil || s.Domain.IsEmpty() {
			return fmt.Errorf("scop %q: statement %q has an empty iteration domain", sc.Name, s.Name)
		}
		accs := make([]*AccessRef, 0, len(s.Reads)+1)
		if s.Write != nil {
			accs = append(accs, s.Write)
		}
		for j := range s.Reads {
			accs = append(accs, &s.Reads[j])
		}
		for _, a := range accs {
			arr, ok := sc.Arrays[a.Array()]
			if !ok {
				return fmt.Errorf("scop %q: statement %q accesses undeclared array %q", sc.Name, s.Name, a.Array())
			}
			if len(a.Access.Exprs) != arr.Dim {
				return fmt.Errorf("scop %q: statement %q accesses %q with %d indices, array has %d dimensions",
					sc.Name, s.Name, arr.Name, len(a.Access.Exprs), arr.Dim)
			}
			if a.Rel == nil {
				return fmt.Errorf("scop %q: statement %q has an un-enumerated access to %q", sc.Name, s.Name, arr.Name)
			}
			if a.Rel.InSpace() != s.Domain.Space() {
				return fmt.Errorf("scop %q: statement %q access relation domain space %v != %v",
					sc.Name, s.Name, a.Rel.InSpace(), s.Domain.Space())
			}
		}
		if injective && s.Write != nil && !s.Write.MayOverwrite && !s.Write.Rel.IsInjective() {
			return fmt.Errorf("scop %q: statement %q write access to %q is not injective (the transformation requires no over-writes; declare the access with WritesOverwriting to opt into the relaxed extension)",
				sc.Name, s.Name, s.Write.Array())
		}
	}
	return nil
}

// TotalIterations returns the number of dynamic statement instances.
func (sc *SCoP) TotalIterations() int {
	n := 0
	for _, s := range sc.Stmts {
		n += s.Domain.Card()
	}
	return n
}

// HasBodies reports whether every statement carries an executable body.
func (sc *SCoP) HasBodies() bool {
	for _, s := range sc.Stmts {
		if s.Body == nil {
			return false
		}
	}
	return true
}
