package scop

import (
	"testing"

	"repro/internal/isl/aff"
)

// buildFP constructs a two-nest producer/consumer SCoP; n parametrizes
// the domain size and stride tweaks one read access.
func buildFP(t *testing.T, name string, n, stride int) *SCoP {
	t.Helper()
	b := NewBuilder(name)
	b.Array("A", 1).Array("B", 1)
	b.Stmt("S", aff.NewDomain("S", aff.ConstBound(0, 0, n))).
		Writes("A", aff.Var(1, 0))
	b.Stmt("T", aff.NewDomain("T", aff.ConstBound(0, 0, n))).
		Writes("B", aff.Var(1, 0)).
		Reads("A", aff.Linear(0, stride))
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestFingerprintStableAcrossRebuilds: rebuilding identical content —
// even under a different SCoP name, with different Body closures —
// reproduces the fingerprint, while any polyhedral change moves it.
func TestFingerprintStableAcrossRebuilds(t *testing.T) {
	a := buildFP(t, "first", 8, 1)
	b := buildFP(t, "second", 8, 1)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical content fingerprints differ")
	}

	for name, other := range map[string]*SCoP{
		"different domain size": buildFP(t, "x", 9, 1),
		"different access":      buildFP(t, "x", 8, 2),
	} {
		if other.Fingerprint() == a.Fingerprint() {
			t.Errorf("%s: fingerprint collision", name)
		}
	}
}

// TestFingerprintParameterAware: the same symbolic program at two
// parameter bindings enumerates different domains and must not share a
// fingerprint (the "parameter-aware" half of content addressing).
func TestFingerprintParameterAware(t *testing.T) {
	small := buildFP(t, "p", 4, 1)
	large := buildFP(t, "p", 16, 1)
	if small.Fingerprint() == large.Fingerprint() {
		t.Fatal("parameter change did not move the fingerprint")
	}
}

// TestFingerprintOverwriteFlag: MayOverwrite selects the relaxed
// pipeline-map algorithm, so it must be part of the address.
func TestFingerprintOverwriteFlag(t *testing.T) {
	build := func(overwriting bool) *SCoP {
		b := NewBuilder("ow")
		b.Array("A", 1).Array("B", 1)
		sb := b.Stmt("S", aff.NewDomain("S", aff.ConstBound(0, 0, 6)))
		if overwriting {
			sb.WritesOverwriting("A", aff.Var(1, 0))
		} else {
			sb.Writes("A", aff.Var(1, 0))
		}
		b.Stmt("T", aff.NewDomain("T", aff.ConstBound(0, 0, 6))).
			Writes("B", aff.Var(1, 0)).
			Reads("A", aff.Var(1, 0))
		sc, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	if build(true).Fingerprint() == build(false).Fingerprint() {
		t.Fatal("MayOverwrite ignored by fingerprint")
	}
}

// TestFingerprintStatementOrder: statement order is the schedule; a
// reordered program is a different program.
func TestFingerprintStatementOrder(t *testing.T) {
	build := func(first, second string) *SCoP {
		b := NewBuilder("ord")
		b.Array("A", 1).Array("B", 1)
		b.Stmt(first, aff.NewDomain(first, aff.ConstBound(0, 0, 5))).
			Writes("A", aff.Var(1, 0))
		b.Stmt(second, aff.NewDomain(second, aff.ConstBound(0, 0, 5))).
			Writes("B", aff.Var(1, 0))
		sc, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	if build("S", "T").Fingerprint() == build("T", "S").Fingerprint() {
		t.Fatal("statement order ignored by fingerprint")
	}
}

func TestFingerprintString(t *testing.T) {
	s := buildFP(t, "s", 4, 1).Fingerprint().String()
	if len(s) != 32 {
		t.Fatalf("fingerprint string %q has length %d, want 32", s, len(s))
	}
}
