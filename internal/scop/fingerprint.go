package scop

import (
	"fmt"
	"sort"

	"repro/internal/isl"
)

// Fingerprint is a 128-bit content address of a SCoP's polyhedral
// description: everything pipeline detection reads — statement order,
// names, iteration domains, and enumerated access relations — and
// nothing it does not (bodies, builder history, pointer identity).
// Two SCoPs with equal fingerprints produce bit-identical detection
// results, which is what lets a serving process reuse one frozen
// *core.Info across requests (see internal/cache).
type Fingerprint [2]uint64

// String renders the fingerprint as 32 hex digits.
func (f Fingerprint) String() string {
	return fmt.Sprintf("%016x%016x", f[0], f[1])
}

// Fingerprint computes the content address of sc, memoized per
// instance: the first call hashes, every later call returns the stored
// value. The memoization makes Fingerprint safe for concurrent callers
// sharing one SCoP (hashing walks the relations through their lazy
// ordering caches, so exactly one goroutine may do it — sync.Once
// serializes that and publishes the side effects), which is what lets
// the detection cache key concurrent requests without locking the
// SCoP. The SCoP must no longer be under construction by then;
// Builder.Build is the usual boundary.
//
// The hash is canonical: arrays are folded in sorted-name order (the
// Arrays map has no order) and relations in their lexicographic
// enumeration order, so construction order, parse order, and interning
// history never move the fingerprint. It is parameter-aware through
// the enumerated domains: the same program text instantiated at
// different parameter bindings (ParseWithParams) enumerates different
// domains and therefore fingerprints differently, while re-building
// the same instantiation reproduces the same value.
func (sc *SCoP) Fingerprint() Fingerprint {
	sc.fpOnce.Do(func() { sc.fp = sc.fingerprint() })
	return sc.fp
}

func (sc *SCoP) fingerprint() Fingerprint {
	d := isl.NewDigest()
	// sc.Name is deliberately excluded: the address is the content, so
	// the same program registered under two SCoP names shares one cache
	// entry. Statement and array names participate — tuple spaces are
	// keyed by them, so they are part of the polyhedral content.
	names := make([]string, 0, len(sc.Arrays))
	for name := range sc.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	d.WriteInt(len(names))
	for _, name := range names {
		d.WriteString(name)
		d.WriteInt(sc.Arrays[name].Dim)
	}
	d.WriteInt(len(sc.Stmts))
	for _, s := range sc.Stmts {
		hashStatement(d, s)
	}
	lo, hi := d.Sum128()
	return Fingerprint{lo, hi}
}

// hashStatement folds one statement: its schedule position, name,
// domain, write (with the overwrite flag, which selects the relaxed
// algorithm), and reads in declaration order. Read order is kept
// because unionReads walks declarations; the union is order-free, but
// keeping the declared order hashes strictly more than detection needs
// and stays trivially canonical.
func hashStatement(d *isl.Digest, s *Statement) {
	d.WriteInt(s.Index)
	d.WriteString(s.Name)
	s.Domain.HashInto(d)
	if s.Write == nil {
		d.WriteInt(0)
	} else {
		d.WriteInt(1)
		hashAccess(d, s.Write)
	}
	d.WriteInt(len(s.Reads))
	for i := range s.Reads {
		hashAccess(d, &s.Reads[i])
	}
}

func hashAccess(d *isl.Digest, a *AccessRef) {
	d.WriteString(a.Array())
	if a.MayOverwrite {
		d.WriteInt(1)
	} else {
		d.WriteInt(0)
	}
	a.Rel.HashInto(d)
}
