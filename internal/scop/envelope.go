package scop

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// The versioned wire envelope. The bare jsonSCoP document of ToJSON
// predates detection-as-a-service; once SCoPs travel between processes
// the format needs a version marker so either side can reject documents
// it does not understand instead of mis-parsing them. An enveloped SCoP
// is
//
//	{"schema": "scop/v1", "scop": { ...bare document... }}
//
// FromJSON accepts both shapes — bare legacy documents keep working for
// checked-in goldens and old tooling — while the HTTP API
// (internal/serve) speaks only the enveloped form. See docs/API.md,
// "Wire format".

// SchemaV1 is the schema identifier of the version-1 SCoP envelope.
const SchemaV1 = "scop/v1"

// SchemaError reports an envelope whose schema identifier is not one
// this build understands. It is a typed error (not a string match) so
// servers can map it to a distinct wire status.
type SchemaError struct {
	// Schema is the unrecognized identifier found in the document.
	Schema string
}

func (e *SchemaError) Error() string {
	return fmt.Sprintf("scop: unsupported schema %q (want %q)", e.Schema, SchemaV1)
}

// envelope is the enveloped wire document. Scop is kept raw so schema
// validation happens before any payload parsing.
type envelope struct {
	Schema string          `json:"schema"`
	Scop   json.RawMessage `json:"scop"`
}

// ToJSONEnveloped serializes the SCoP's polyhedral description inside
// the scop/v1 envelope — the only form the HTTP API accepts.
func ToJSONEnveloped(sc *SCoP) ([]byte, error) {
	body, err := ToJSON(sc)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "{\n  \"schema\": %q,\n  \"scop\": ", SchemaV1)
	// Re-indent the bare document so the envelope stays readable.
	var indented bytes.Buffer
	if err := json.Indent(&indented, body, "  ", "  "); err != nil {
		return nil, fmt.Errorf("scop: indent envelope: %w", err)
	}
	buf.Write(indented.Bytes())
	buf.WriteString("\n}")
	return buf.Bytes(), nil
}

// unwrapEnvelope strips a scop/v1 envelope from data, returning the
// bare document. Documents without a "schema" key pass through
// unchanged (the legacy bare form); documents with an unknown schema
// fail with *SchemaError.
func unwrapEnvelope(data []byte) ([]byte, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		// Not an object at all — let FromJSON's own parse produce the
		// canonical error against the original bytes.
		return data, nil
	}
	if env.Schema == "" {
		return data, nil // bare legacy document
	}
	if env.Schema != SchemaV1 {
		return nil, &SchemaError{Schema: env.Schema}
	}
	if len(env.Scop) == 0 {
		return nil, fmt.Errorf("scop: %s envelope has no \"scop\" payload", SchemaV1)
	}
	return env.Scop, nil
}
