package ir

import (
	"fmt"
	"sort"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/isl"
)

// Lower builds the block-program IR from a detection result and the
// compiled task program (codegen.CompileForEmission(info)). Lowering
// never touches the SCoP — in particular it never attaches statement
// bodies — and the returned program is independent of info except for
// shared immutable vectors.
func Lower(info *core.Info, tp *codegen.TaskProgram, opt Options) (*Program, error) {
	if len(info.Stmts) != len(info.SCoP.Stmts) {
		return nil, fmt.Errorf("ir: incomplete detection info (%d of %d statements); pass the result of core.Detect",
			len(info.Stmts), len(info.SCoP.Stmts))
	}
	stop := opt.Obs.Phase("ir.lower")
	defer stop()

	workers := opt.Workers
	if workers <= 0 {
		workers = 1
	}
	p := &Program{
		Name:       info.SCoP.Name,
		Workers:    workers,
		Coder:      tp.Coder,
		ArrayIndex: map[string]int{},
	}
	if err := lowerArrays(p, info); err != nil {
		return nil, err
	}
	if err := lowerStmts(p, info); err != nil {
		return nil, err
	}
	lowerTasks(p, info, tp)
	p.rt = tp.Lower()

	opt.Obs.SetGauge("ir.tasks", int64(len(p.Tasks)))
	opt.Obs.SetGauge("ir.stmts", int64(len(p.Stmts)))
	opt.Obs.SetGauge("ir.arrays", int64(len(p.Arrays)))
	return p, nil
}

// lowerArrays computes the canonical accessed bounding box of every
// array (interp's allocation, the seed/hash contract) and the naive
// origin-anchored storage layout the narrow pass later shrinks.
func lowerArrays(p *Program, info *core.Info) error {
	sc := info.SCoP
	type bounds struct{ lo, hi []int }
	bs := map[string]*bounds{}
	written := map[string]bool{}
	consider := func(rel *isl.Map) {
		name := rel.OutSpace().Name
		b := bs[name]
		rel.Range().Foreach(func(idx isl.Vec) bool {
			if b == nil {
				b = &bounds{lo: idx.Clone(), hi: idx.Clone()}
				bs[name] = b
			}
			for d, x := range idx {
				if x < b.lo[d] {
					b.lo[d] = x
				}
				if x > b.hi[d] {
					b.hi[d] = x
				}
			}
			return true
		})
	}
	for _, s := range sc.Stmts {
		if s.Write != nil {
			consider(s.Write.Rel)
			written[s.Write.Array()] = true
		}
		for i := range s.Reads {
			consider(s.Reads[i].Rel)
		}
	}
	names := make([]string, 0, len(sc.Arrays))
	for name := range sc.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		arr := sc.Arrays[name]
		b := bs[name]
		accessed := b != nil
		if b == nil {
			// Declared but never accessed: a single canonical cell,
			// still seeded and hashed (interp parity).
			b = &bounds{lo: make([]int, arr.Dim), hi: make([]int, arr.Dim)}
		}
		a := Array{
			Name:     name,
			Offset:   b.lo,
			Accessed: accessed,
			Written:  written[name],
		}
		a.StorageSize = 1
		for d := range b.lo {
			a.Extent = append(a.Extent, b.hi[d]-b.lo[d]+1)
			// Naive storage: anchored at the origin, so subscripts
			// index directly without offset subtraction folded in.
			so := b.lo[d]
			if so > 0 {
				so = 0
			}
			a.StorageOffset = append(a.StorageOffset, so)
			a.StorageExtent = append(a.StorageExtent, b.hi[d]-so+1)
			a.StorageSize *= a.StorageExtent[d]
		}
		p.ArrayIndex[name] = len(p.Arrays)
		p.Arrays = append(p.Arrays, a)
	}
	return nil
}

// lowerStmts builds the typed op list of every statement body,
// implementing the interp synthetic semantics over the access
// relations' affine subscripts.
func lowerStmts(p *Program, info *core.Info) error {
	for _, s := range info.SCoP.Stmts {
		if s.Spec == nil {
			return fmt.Errorf("ir: statement %q has no symbolic domain", s.Name)
		}
		st := Stmt{
			Index:  s.Index,
			Name:   s.Name,
			Depth:  s.Depth(),
			Bounds: s.Spec.Bounds,
		}
		st.Ops = append(st.Ops, Op{Kind: OpAccInit})
		for i := range s.Reads {
			rd := &s.Reads[i]
			st.Ops = append(st.Ops, Op{
				Kind:  OpRead,
				Array: p.ArrayIndex[rd.Array()],
				Index: rd.Access.Exprs,
			})
		}
		st.Ops = append(st.Ops, Op{Kind: OpFinish})
		if s.Write != nil {
			st.Ops = append(st.Ops, Op{
				Kind:  OpWrite,
				Array: p.ArrayIndex[s.Write.Array()],
				Index: s.Write.Access.Exprs,
			})
		} else {
			st.Sink = true
			st.Ops = append(st.Ops, Op{Kind: OpSink})
			p.Sinks = append(p.Sinks, s.Name)
		}
		p.Stmts = append(p.Stmts, st)
	}
	sort.Strings(p.Sinks)
	return nil
}

// lowerTasks converts the compiled task specs — one pipeline block
// each — into single-unit IR tasks, materializing the lexicographic
// From bound the same way the in-process block runners do: the
// previous block's leader, or a below-minimum sentinel for a
// statement's first block.
func lowerTasks(p *Program, info *core.Info, tp *codegen.TaskProgram) {
	prevLeader := map[int]isl.Vec{}
	for i := range tp.Tasks {
		spec := &tp.Tasks[i]
		depth := spec.Stmt.Depth()
		from := prevLeader[spec.Stmt.Index]
		if from == nil {
			from = make(isl.Vec, depth)
			if min, ok := spec.Stmt.Domain.Lexmin(); ok {
				copy(from, min)
				from[0] = min[0] - 1
			}
		}
		t := Task{
			Label: spec.Label,
			Units: []Unit{{
				Stmt:    spec.Stmt.Index,
				From:    from,
				To:      spec.Leader,
				Members: spec.Members,
			}},
			Outs:    []int{spec.Out},
			Ins:     append([]int(nil), spec.In...),
			Serials: []int{spec.Serial},
		}
		p.Tasks = append(p.Tasks, t)
		prevLeader[spec.Stmt.Index] = spec.Leader
	}
}
