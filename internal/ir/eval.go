package ir

import (
	"fmt"
	"math"

	"repro/internal/interp"
	"repro/internal/isl"
)

// Evaluator executes a lowered program in process with exactly the
// semantics the emitted Go text implements: storage per the program's
// (possibly narrowed) layouts, seeding and hashing over the canonical
// box, bodies through the interp semantics seam. It is the reference
// the pass unit tests compare against interp.State — if an evaluator
// run of a transformed program hashes identically to interpretation,
// the transformation preserved the observable semantics.
type Evaluator struct {
	p     *Program
	data  [][]float64
	sinks map[string]int64
}

// NewEvaluator allocates storage for p.
func NewEvaluator(p *Program) *Evaluator {
	ev := &Evaluator{p: p, sinks: map[string]int64{}}
	for i := range p.Arrays {
		ev.data = append(ev.data, make([]float64, p.Arrays[i].StorageSize))
	}
	return ev
}

// boxEach walks the canonical box of a row-major, calling fn with the
// flat storage position and the running canonical position (the seed
// and hash ordinal).
func (ev *Evaluator) boxEach(ai int, fn func(storagePos, canonPos int)) {
	a := &ev.p.Arrays[ai]
	idx := make([]int, len(a.Extent))
	canon := 0
	var walk func(d int)
	walk = func(d int) {
		if d == len(a.Extent) {
			pos := 0
			for k, x := range idx {
				pos = pos*a.StorageExtent[k] + (a.Offset[k] + x - a.StorageOffset[k])
			}
			fn(pos, canon)
			canon++
			return
		}
		for x := 0; x < a.Extent[d]; x++ {
			idx[d] = x
			walk(d + 1)
		}
	}
	walk(0)
}

// Seed seeds every array (canonical order and values, interp parity)
// and clears the sinks. When reseed is true, seed-once arrays are
// skipped — the emitted program's behaviour between runs.
func (ev *Evaluator) Seed(reseed bool) {
	for name := range ev.sinks {
		ev.sinks[name] = 0
	}
	for i := range ev.p.Arrays {
		a := &ev.p.Arrays[i]
		if reseed && a.SeedOnce {
			continue
		}
		base := interp.SeedBase(a.Name)
		ev.boxEach(i, func(pos, canon int) {
			ev.data[i][pos] = interp.SeedValue(base, canon)
		})
	}
}

// Hash digests the canonical box of every array, then the sink
// accumulators in sorted statement order — the interp.State.Hash
// contract.
func (ev *Evaluator) Hash() uint64 {
	h := uint64(14695981039346656037)
	for i := range ev.p.Arrays {
		ev.boxEach(i, func(pos, _ int) {
			h ^= math.Float64bits(ev.data[i][pos])
			h *= 1099511628211
		})
	}
	for _, name := range ev.p.Sinks {
		h ^= uint64(ev.sinks[name])
		h *= 1099511628211
	}
	return h
}

// runBody executes one statement body at iteration iv.
func (ev *Evaluator) runBody(s *Stmt, iv isl.Vec) {
	acc := float64(interp.AccInit)
	v := 0.0
	for k := range s.Ops {
		op := &s.Ops[k]
		switch op.Kind {
		case OpAccInit:
			acc = interp.AccInit
		case OpRead:
			acc = interp.FoldRead(acc, ev.data[op.Array][ev.flat(op, iv)])
		case OpFinish:
			lin := 0
			for _, x := range iv {
				lin += x
			}
			v = interp.Finish(acc, lin)
		case OpWrite:
			ev.data[op.Array][ev.flat(op, iv)] = v
		case OpSink:
			ev.sinks[s.Name] += interp.SinkFold(v)
		}
	}
}

func (ev *Evaluator) flat(op *Op, iv isl.Vec) int {
	a := &ev.p.Arrays[op.Array]
	pos := 0
	for d, e := range op.Index {
		x := e.Eval(iv) - a.StorageOffset[d]
		if x < 0 || x >= a.StorageExtent[d] {
			panic(fmt.Sprintf("ir: access %s outside storage (dim %d: %d not in [0,%d))",
				a.Name, d, x, a.StorageExtent[d]))
		}
		pos = pos*a.StorageExtent[d] + x
	}
	return pos
}

// runUnit executes one unit, preferring its segments when the
// specialize pass computed them (so evaluator runs exercise exactly
// what the emitter emits).
func (ev *Evaluator) runUnit(u *Unit) {
	s := &ev.p.Stmts[u.Stmt]
	if u.Segs != nil {
		iv := make(isl.Vec, len(u.From))
		for _, seg := range u.Segs {
			copy(iv, seg.Start)
			d := len(iv) - 1
			for k := 0; k < seg.Len; k++ {
				if d >= 0 {
					iv[d] = seg.Start[d] + k
				}
				ev.runBody(s, iv)
			}
		}
		return
	}
	for _, iv := range u.Members {
		ev.runBody(s, iv)
	}
}

// RunTasks executes every task in creation order — a legal schedule of
// the pipelined program.
func (ev *Evaluator) RunTasks() {
	for i := range ev.p.Tasks {
		for j := range ev.p.Tasks[i].Units {
			ev.runUnit(&ev.p.Tasks[i].Units[j])
		}
	}
}

// Run seeds, executes all tasks in creation order, and returns the
// state hash.
func (ev *Evaluator) Run() uint64 {
	ev.Seed(false)
	ev.RunTasks()
	return ev.Hash()
}

// RunTwice mimics the emitted main: seed, run, hash, re-seed (honoring
// seed-once), run again, hash — returning both hashes. Used to prove
// the narrow pass's seed-once elision is invisible.
func (ev *Evaluator) RunTwice() (first, second uint64) {
	ev.Seed(false)
	ev.RunTasks()
	first = ev.Hash()
	ev.Seed(true)
	ev.RunTasks()
	second = ev.Hash()
	return first, second
}
