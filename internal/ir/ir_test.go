package ir

import (
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/isl"
	"repro/internal/isl/aff"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/scop"
)

const listing1Src = `
for (i = 0; i < 11; i++)
  for (j = 0; j < 11; j++)
    S: A[i][j] = f(A[i][j], A[i][j+1], A[i+1][j+1]);
for (i = 0; i < 5; i++)
  for (j = 0; j < 5; j++)
    R: B[i][j] = g(A[i][2*j], B[i][j+1], B[i+1][j+1], B[i][j]);
`

// shiftedSrc reads/writes through a positive shift, so the canonical
// accessed box starts above the origin and the naive storage layout
// carries slack for the narrow pass to reclaim.
const shiftedSrc = `
for (i = 0; i < 6; i++)
  S: A[i+3] = f(A[i+3]);
for (i = 0; i < 6; i++)
  R: B[i] = g(A[i+3], B[i]);
`

// sinkDeadScop builds (programmatically — the DSL cannot express
// either) a SCoP with a dead array D (declared, never accessed) and a
// sink statement K (reads B, writes nothing, accumulates into its
// sink).
func sinkDeadScop(t *testing.T) *scop.SCoP {
	t.Helper()
	n := 8
	b := scop.NewBuilder("sinkdead")
	b.Array("A", 1).Array("B", 1).Array("D", 2)
	b.Stmt("S", aff.RectDomain("S", n)).
		Writes("A", aff.Var(1, 0)).
		Reads("A", aff.Var(1, 0))
	b.Stmt("R", aff.RectDomain("R", n)).
		Writes("B", aff.Var(1, 0)).
		Reads("A", aff.Var(1, 0)).
		Reads("B", aff.Var(1, 0))
	b.Stmt("K", aff.RectDomain("K", n)).
		Reads("B", aff.Var(1, 0))
	return b.MustBuild()
}

// lowerScop detects and lowers an already-built SCoP.
func lowerScop(t *testing.T, sc *scop.SCoP, passes string, opt Options) *Program {
	t.Helper()
	info, err := core.Detect(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := codegen.CompileForEmission(info)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Lower(info, tp, opt)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := ParsePasses(passes)
	if err != nil {
		t.Fatal(err)
	}
	RunPasses(p, ps, opt)
	return p
}

// lowerSrc parses, detects, and lowers src, applying the selected
// passes.
func lowerSrc(t *testing.T, src, passes string, opt Options) (*Program, *scop.SCoP) {
	t.Helper()
	sc, err := lang.Parse("ir", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := core.Detect(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := codegen.CompileForEmission(info)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Lower(info, tp, opt)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := ParsePasses(passes)
	if err != nil {
		t.Fatal(err)
	}
	RunPasses(p, ps, opt)
	return p, sc
}

// interpHash runs the interpreter sequentially over sc and returns the
// reference state hash.
func interpHash(t *testing.T, sc *scop.SCoP) uint64 {
	t.Helper()
	p := interp.Programify(sc)
	p.Reset()
	for _, s := range sc.Stmts {
		for _, iv := range s.Domain.Elements() {
			s.Body(iv)
		}
	}
	return p.Hash()
}

// checkAgainstInterp asserts that evaluating the (possibly
// transformed) IR program reproduces the interpreter hash bit for bit,
// including across an emitted-style re-seed/re-run cycle.
func checkAgainstInterp(t *testing.T, p *Program, sc *scop.SCoP) {
	t.Helper()
	want := interpHash(t, sc)
	ev := NewEvaluator(p)
	first, second := ev.RunTwice()
	if first != want {
		t.Fatalf("evaluator hash %x != interpreter hash %x\n%s", first, want, p)
	}
	if second != want {
		t.Fatalf("second-run hash %x != interpreter hash %x (re-seed broken)\n%s", second, want, p)
	}
}

func TestLowerMatchesInterp(t *testing.T) {
	for name, src := range map[string]string{"listing1": listing1Src, "shifted": shiftedSrc} {
		t.Run(name, func(t *testing.T) {
			p, sc := lowerSrc(t, src, "none", Options{Workers: 2})
			if len(p.Tasks) == 0 {
				t.Fatal("no tasks lowered")
			}
			for i := range p.Tasks {
				if len(p.Tasks[i].Units) != 1 {
					t.Fatalf("task %d has %d units before fusion", i, len(p.Tasks[i].Units))
				}
			}
			checkAgainstInterp(t, p, sc)
		})
	}
}

func TestParsePasses(t *testing.T) {
	all, err := ParsePasses("")
	if err != nil || len(all) != len(Passes()) {
		t.Fatalf("empty selector: %v, %d passes", err, len(all))
	}
	none, err := ParsePasses("none")
	if err != nil || len(none) != 0 {
		t.Fatalf("none selector: %v, %d passes", err, len(none))
	}
	// Subsets come back in canonical order regardless of spelling.
	sub, err := ParsePasses("specialize,fuse")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 2 || sub[0].Name != "fuse" || sub[1].Name != "specialize" {
		t.Fatalf("subset not canonicalized: %v", []string{sub[0].Name, sub[1].Name})
	}
	if _, err := ParsePasses("fuse,bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown pass not rejected: %v", err)
	}
}

func TestFusePass(t *testing.T) {
	rec := obs.NewRecorder()
	opt := Options{Workers: 2, FuseThreshold: 64, Obs: rec}
	before, _ := lowerSrc(t, listing1Src, "none", Options{Workers: 2})
	p, sc := lowerSrc(t, listing1Src, "fuse", opt)
	if len(p.Tasks) >= len(before.Tasks) {
		t.Fatalf("fusion did not reduce tasks: %d -> %d", len(before.Tasks), len(p.Tasks))
	}
	fused := rec.Snapshot().Counters["ir.blocks_fused"]
	if int(fused) != len(before.Tasks)-len(p.Tasks) {
		t.Fatalf("ir.blocks_fused = %d, want %d", fused, len(before.Tasks)-len(p.Tasks))
	}
	multi := 0
	for i := range p.Tasks {
		if n := len(p.Tasks[i].Units); n > 1 {
			multi++
			if iters := p.Tasks[i].Iters(); iters > opt.FuseThreshold {
				t.Fatalf("fused task %d has %d iters, threshold %d", i, iters, opt.FuseThreshold)
			}
		}
	}
	if multi == 0 {
		t.Fatal("no multi-unit tasks after fusion")
	}
	checkAgainstInterp(t, p, sc)
}

// TestHoistPassMatchesRuntime proves the compile-time address
// resolution is the runtime.Builder resolution: without fusion, the
// hoisted CSR must be identical, element for element, to the DAG the
// in-process runtime lowers from the same task program.
func TestHoistPassMatchesRuntime(t *testing.T) {
	rec := obs.NewRecorder()
	p, sc := lowerSrc(t, listing1Src, "hoist", Options{Workers: 2, Obs: rec})
	if p.CSR == nil {
		t.Fatal("hoist pass did not resolve the CSR")
	}
	if rec.Snapshot().Counters["ir.addrs_hoisted"] == 0 {
		t.Fatal("ir.addrs_hoisted not recorded")
	}

	// Re-lower the same program and compare against the runtime DAG.
	scRef, err := lang.Parse("ir", listing1Src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := core.Detect(scRef, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := codegen.CompileForEmission(info)
	if err != nil {
		t.Fatal(err)
	}
	rt := tp.Lower()
	if rt.NumTasks() != len(p.Tasks) {
		t.Fatalf("task counts differ: runtime %d, ir %d", rt.NumTasks(), len(p.Tasks))
	}
	for i := 0; i < rt.NumTasks(); i++ {
		if got, want := p.CSR.Indeg0[i], int32(rt.Indegree0(i)); got != want {
			t.Fatalf("task %d indegree %d != runtime %d", i, got, want)
		}
		got := p.CSR.Succs[p.CSR.SuccOff[i]:p.CSR.SuccOff[i+1]]
		want := rt.SuccsOf(i)
		if len(got) != len(want) {
			t.Fatalf("task %d successor count %d != runtime %d", i, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("task %d successor %d: %d != runtime %d", i, k, got[k], want[k])
			}
		}
	}
	if len(p.CSR.Roots) != len(rt.Roots()) {
		t.Fatalf("root count %d != runtime %d", len(p.CSR.Roots), len(rt.Roots()))
	}
	checkAgainstInterp(t, p, sc)
}

// TestHoistAfterFuse checks the resolved DAG of a fused program stays
// acyclic-consistent: every edge points forward in creation order and
// internal (intra-task) producer→consumer addresses create no
// self-edges.
func TestHoistAfterFuse(t *testing.T) {
	p, sc := lowerSrc(t, listing1Src, "fuse,hoist", Options{Workers: 2, FuseThreshold: 64})
	if p.CSR == nil {
		t.Fatal("no CSR after fuse,hoist")
	}
	for i := range p.Tasks {
		for _, s := range p.CSR.Succs[p.CSR.SuccOff[i]:p.CSR.SuccOff[i+1]] {
			if int(s) == i {
				t.Fatalf("task %d has a self-edge", i)
			}
			if int(s) < i {
				t.Fatalf("edge %d -> %d points backward", i, s)
			}
		}
	}
	checkAgainstInterp(t, p, sc)
}

func TestSpecializePass(t *testing.T) {
	rec := obs.NewRecorder()
	p, sc := lowerSrc(t, listing1Src, "specialize", Options{Workers: 2, Obs: rec})
	snap := rec.Snapshot()
	if got := snap.Counters["ir.bodies_specialized"]; got != int64(len(p.Stmts)) {
		t.Fatalf("ir.bodies_specialized = %d, want %d", got, len(p.Stmts))
	}
	if snap.Counters["ir.segments"] == 0 {
		t.Fatal("ir.segments not recorded")
	}
	for i := range p.Tasks {
		for j := range p.Tasks[i].Units {
			u := &p.Tasks[i].Units[j]
			if u.Segs == nil {
				t.Fatalf("task %d unit %d not segmented", i, j)
			}
			// Segments must cover exactly the members, in order.
			var got []isl.Vec
			for _, seg := range u.Segs {
				d := len(seg.Start) - 1
				for k := 0; k < seg.Len; k++ {
					iv := seg.Start.Clone()
					if d >= 0 {
						iv[d] += k
					}
					got = append(got, iv)
				}
			}
			if len(got) != len(u.Members) {
				t.Fatalf("task %d unit %d: segments cover %d points, members %d", i, j, len(got), len(u.Members))
			}
			for k := range got {
				for dd := range got[k] {
					if got[k][dd] != u.Members[k][dd] {
						t.Fatalf("task %d unit %d point %d: segs %v != member %v", i, j, k, got[k], u.Members[k])
					}
				}
			}
		}
	}
	checkAgainstInterp(t, p, sc)
}

func TestNarrowPass(t *testing.T) {
	rec := obs.NewRecorder()
	before, _ := lowerSrc(t, shiftedSrc, "none", Options{Workers: 2})
	p, sc := lowerSrc(t, shiftedSrc, "narrow", Options{Workers: 2, Obs: rec})
	snap := rec.Snapshot()
	if snap.Counters["ir.extent_cells_saved"] == 0 {
		t.Fatal("shifted accesses should save storage cells")
	}
	for i := range p.Arrays {
		a := &p.Arrays[i]
		if !a.Narrowed() {
			t.Fatalf("array %s not narrowed", a.Name)
		}
		if !a.Written && !a.SeedOnce {
			t.Fatalf("unwritten array %s not marked seed-once", a.Name)
		}
	}
	// A (accessed at i+3, i in [0,6)) must have shed its origin slack.
	ai := p.ArrayIndex["A"]
	bi := before.ArrayIndex["A"]
	if p.Arrays[ai].StorageSize >= before.Arrays[bi].StorageSize {
		t.Fatalf("A storage not reduced: %d -> %d",
			before.Arrays[bi].StorageSize, p.Arrays[ai].StorageSize)
	}
	checkAgainstInterp(t, p, sc)
}

// TestSinkAndDeadArrays covers the two shapes the DSL cannot express:
// a sink statement (no write access, accumulates into a hashed sink)
// and a dead array (declared, never accessed, still seeded and
// hashed). Both must survive the full pipeline with interp parity.
func TestSinkAndDeadArrays(t *testing.T) {
	for _, passes := range []string{"none", "all"} {
		t.Run(passes, func(t *testing.T) {
			rec := obs.NewRecorder()
			sc := sinkDeadScop(t)
			p := lowerScop(t, sc, passes, Options{Workers: 2, Obs: rec})
			if len(p.Sinks) != 1 || p.Sinks[0] != "K" {
				t.Fatalf("sinks = %v, want [K]", p.Sinks)
			}
			di := p.ArrayIndex["D"]
			if p.Arrays[di].Accessed {
				t.Fatal("D should be dead")
			}
			if p.Arrays[di].Size() != 1 {
				t.Fatalf("dead array canonical size %d, want 1", p.Arrays[di].Size())
			}
			if passes == "all" {
				snap := rec.Snapshot()
				if snap.Counters["ir.arrays_dead"] != 1 {
					t.Fatalf("ir.arrays_dead = %d, want 1", snap.Counters["ir.arrays_dead"])
				}
				if !p.Arrays[di].SeedOnce {
					t.Fatal("dead array not marked seed-once")
				}
			}
			checkAgainstInterp(t, p, sc)
		})
	}
}

func TestFullPipelineMatchesInterp(t *testing.T) {
	for name, src := range map[string]string{"listing1": listing1Src, "shifted": shiftedSrc} {
		t.Run(name, func(t *testing.T) {
			p, sc := lowerSrc(t, src, "all", Options{Workers: 4})
			if len(p.Applied) != len(Passes()) {
				t.Fatalf("applied %v", p.Applied)
			}
			if p.CSR == nil {
				t.Fatal("full pipeline left CSR unresolved")
			}
			checkAgainstInterp(t, p, sc)
		})
	}
}

func TestDumpListsProgram(t *testing.T) {
	p, _ := lowerSrc(t, listing1Src, "all", Options{Workers: 2})
	dump := p.String()
	for _, want := range []string{"program \"ir\"", "passes: fuse, hoist, specialize, narrow", "stmt S", "stmt R", "task 0", "csr: edges="} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}
