// Package ir is the mid-level block-program IR of the AOT compiler
// back end — the layer between detection/task compilation
// (core.Detect + codegen.CompileForEmission) and textual Go emission
// (internal/gogen), in the classic front end → IR → optimization
// passes → code generation shape.
//
// A Program carries, in typed form, everything the emitted standalone
// program needs:
//
//   - array layouts derived from the access relations (the canonical
//     accessed bounding box that seeding and hashing iterate — the
//     contract shared bit for bit with package interp — plus the
//     storage layout actually allocated, which the narrow pass shrinks
//     onto the canonical box);
//   - statement bodies as typed op lists (OpAccInit / OpRead /
//     OpFinish / OpWrite / OpSink) implementing the synthetic
//     semantics of internal/interp's seam (interp.FoldRead,
//     interp.Finish, ...);
//   - tasks as lists of units, each unit one pipeline block of one
//     statement: the lexicographic interval (From ≺ iv ≼ To) through
//     the original loop bounds, the explicit member vectors, and —
//     after the specialize pass — run-length segments that iterate
//     only the block's own points;
//   - the §5.4 integer dependency interface (Outs/Ins/Serials
//     addresses) and, after the hoist pass, the fully resolved
//     dependency DAG in CSR form.
//
// Passes (see passes.go) transform the Program in place; the pass
// manager reports what each pass did through ir.* metrics on an
// obs.Recorder, so pipeline-stats can show the effect of every
// transformation.
package ir

import (
	"fmt"
	"strings"

	"repro/internal/codegen"
	"repro/internal/isl"
	"repro/internal/isl/aff"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// DefaultFuseThreshold is the tiny-block fusion limit: chains are
// merged while the merged task stays at or below this many iterations.
const DefaultFuseThreshold = 16

// Options tunes lowering and the pass pipeline.
type Options struct {
	// Workers is the worker count baked into the emitted main (the
	// emitted binary can override it with its first argument).
	Workers int
	// FuseThreshold caps the iteration count of a fused task
	// (0 means DefaultFuseThreshold).
	FuseThreshold int
	// Obs, when non-nil, receives lowering phases and the ir.* pass
	// metrics.
	Obs *obs.Recorder
}

// Array is one array of the program with its two layouts. Offset and
// Extent describe the canonical box — the bounding box of every
// declared access, exactly interp's allocation — which seeding and
// hashing always iterate in row-major order so the emitted hash stays
// bit-identical to interp.State.Hash. StorageOffset/StorageExtent
// describe the cells the emitted program actually allocates: before
// narrowing a naive origin-anchored box (the canonical box widened to
// include the zero origin), afterwards the canonical box itself.
type Array struct {
	Name   string
	Offset []int
	Extent []int

	StorageOffset []int
	StorageExtent []int
	StorageSize   int

	// Accessed is false for declared-but-never-accessed arrays (a
	// single canonical cell, still seeded and hashed).
	Accessed bool
	// Written is false for read-only arrays.
	Written bool
	// SeedOnce marks arrays the emitted program seeds only at startup
	// (dead and read-only arrays: no run mutates them, so re-seeding
	// between the sequential and pipelined runs is redundant). Set by
	// the narrow pass.
	SeedOnce bool
}

// Size returns the canonical (hashed) cell count.
func (a *Array) Size() int {
	n := 1
	for _, e := range a.Extent {
		n *= e
	}
	return n
}

// Narrowed reports whether storage already equals the canonical box.
func (a *Array) Narrowed() bool {
	for d := range a.Extent {
		if a.StorageOffset[d] != a.Offset[d] || a.StorageExtent[d] != a.Extent[d] {
			return false
		}
	}
	return true
}

// OpKind enumerates the body op set.
type OpKind int

const (
	// OpAccInit starts the accumulator: acc = interp.AccInit.
	OpAccInit OpKind = iota
	// OpRead folds one array read: acc = interp.FoldRead(acc, cell).
	OpRead
	// OpFinish combines accumulator and coordinates:
	// v = interp.Finish(acc, Σ iv).
	OpFinish
	// OpWrite stores v into the written cell.
	OpWrite
	// OpSink folds v into the statement's sink accumulator:
	// sink += interp.SinkFold(v).
	OpSink
)

func (k OpKind) String() string {
	switch k {
	case OpAccInit:
		return "accinit"
	case OpRead:
		return "read"
	case OpFinish:
		return "finish"
	case OpWrite:
		return "write"
	case OpSink:
		return "sink"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one typed body operation. Array indexes Program.Arrays and
// Index holds the affine subscripts (OpRead and OpWrite only).
type Op struct {
	Kind  OpKind
	Array int
	Index []aff.Expr
}

// Stmt is one statement of the program: its loop bounds (over outer
// iterators, Hi exclusive) and its body as an op list.
type Stmt struct {
	Index  int
	Name   string
	Depth  int
	Bounds []aff.LoopBound
	Ops    []Op
	// Sink is true for statements without a write access (they
	// accumulate into a per-statement sink hashed after the arrays).
	Sink bool
	// Inline is set by the specialize pass: the emitter inlines the
	// body into the task loops instead of emitting a dispatch to a
	// per-statement function.
	Inline bool
}

// Seg is a run of consecutive innermost-dimension iterations: Start,
// Start+e_last, ..., Start+(Len-1)·e_last. Computed by the specialize
// pass so emitted tasks iterate exactly their own points instead of
// scanning the full domain behind a lexicographic guard.
type Seg struct {
	Start isl.Vec
	Len   int
}

// Unit is one pipeline block of one statement inside a task. From/To
// delimit the lexicographic interval (From ≺ iv ≼ To); Members are the
// block's iteration vectors in execution order; Segs, when non-nil,
// cover exactly the members as innermost-dimension runs.
type Unit struct {
	Stmt     int
	From, To isl.Vec
	Members  []isl.Vec
	Segs     []Seg
}

// Iters returns the unit's iteration count.
func (u *Unit) Iters() int { return len(u.Members) }

// Task is one runtime task: its units (more than one after fusion, run
// back to back) and its §5.4 dependency interface. Outs/Ins/Serials
// aggregate the units' addresses; internal producer→consumer addresses
// between units of the same task are kept (resolution skips
// self-edges).
type Task struct {
	Label   string
	Units   []Unit
	Outs    []int
	Ins     []int
	Serials []int
}

// Iters returns the task's total iteration count.
func (t *Task) Iters() int {
	n := 0
	for i := range t.Units {
		n += t.Units[i].Iters()
	}
	return n
}

// CSR is the resolved dependency DAG (successor adjacency + initial
// indegrees), produced by the hoist pass; nil until it runs, in which
// case the emitted program resolves the address tables at startup.
type CSR struct {
	SuccOff []int32
	Succs   []int32
	Indeg0  []int32
	Roots   []int32
}

// NumEdges returns the edge count.
func (c *CSR) NumEdges() int { return len(c.Succs) }

// Program is the lowered block program.
type Program struct {
	Name    string
	Workers int
	Coder   codegen.VecCoder
	Arrays  []Array
	Stmts   []Stmt
	Tasks   []Task
	CSR     *CSR
	// Applied lists the passes run on this program, in order.
	Applied []string

	// ArrayIndex maps array name to its position in Arrays.
	ArrayIndex map[string]int
	// Sinks lists sink statement names in sorted order (the hash
	// order, matching interp.State).
	Sinks []string

	// rt is the compiled runtime DAG of the unfused task program; the
	// fuse pass consumes its FuseChains classification.
	rt *runtime.Program
}

// NumIters returns the total iteration count across all tasks.
func (p *Program) NumIters() int {
	n := 0
	for i := range p.Tasks {
		n += p.Tasks[i].Iters()
	}
	return n
}

// Dump writes a human-readable listing of the program (the -dump-ir
// output of pipelinec).
func (p *Program) Dump(w *strings.Builder) {
	fmt.Fprintf(w, "program %q workers=%d tasks=%d stmts=%d arrays=%d\n",
		p.Name, p.Workers, len(p.Tasks), len(p.Stmts), len(p.Arrays))
	if len(p.Applied) > 0 {
		fmt.Fprintf(w, "passes: %s\n", strings.Join(p.Applied, ", "))
	} else {
		fmt.Fprintf(w, "passes: (none)\n")
	}
	for i := range p.Arrays {
		a := &p.Arrays[i]
		flags := ""
		if !a.Accessed {
			flags += " dead"
		} else if !a.Written {
			flags += " readonly"
		}
		if a.SeedOnce {
			flags += " seed-once"
		}
		fmt.Fprintf(w, "array %s box=%v+%v storage=%v+%v (%d cells)%s\n",
			a.Name, a.Offset, a.Extent, a.StorageOffset, a.StorageExtent, a.StorageSize, flags)
	}
	for i := range p.Stmts {
		s := &p.Stmts[i]
		mode := "dispatch"
		if s.Inline {
			mode = "inline"
		}
		fmt.Fprintf(w, "stmt %s depth=%d %s\n", s.Name, s.Depth, mode)
		for _, op := range s.Ops {
			switch op.Kind {
			case OpRead, OpWrite:
				subs := make([]string, len(op.Index))
				for d, e := range op.Index {
					subs[d] = e.String()
				}
				fmt.Fprintf(w, "  %-7s %s[%s]\n", op.Kind, p.Arrays[op.Array].Name, strings.Join(subs, ", "))
			default:
				fmt.Fprintf(w, "  %s\n", op.Kind)
			}
		}
	}
	for i := range p.Tasks {
		t := &p.Tasks[i]
		fmt.Fprintf(w, "task %d %s iters=%d units=%d outs=%v ins=%v serials=%v\n",
			i, t.Label, t.Iters(), len(t.Units), t.Outs, t.Ins, t.Serials)
		for j := range t.Units {
			u := &t.Units[j]
			seg := ""
			if u.Segs != nil {
				seg = fmt.Sprintf(" segs=%d", len(u.Segs))
			}
			fmt.Fprintf(w, "  unit %s (%v, %v] iters=%d%s\n",
				p.Stmts[u.Stmt].Name, u.From, u.To, u.Iters(), seg)
		}
	}
	if p.CSR != nil {
		fmt.Fprintf(w, "csr: edges=%d roots=%d (hoisted)\n", p.CSR.NumEdges(), len(p.CSR.Roots))
	} else {
		fmt.Fprintf(w, "csr: unresolved (emitted program resolves addresses at startup)\n")
	}
}

// String returns the Dump listing.
func (p *Program) String() string {
	var b strings.Builder
	p.Dump(&b)
	return b.String()
}
