package ir

import (
	"fmt"
	"strings"

	"repro/internal/isl"
)

// Pass is one IR-to-IR transformation. Passes run in the canonical
// pipeline order (the order Passes returns) regardless of how a
// subset was selected, because later passes consume what earlier ones
// produce: hoisting resolves the post-fusion task list, and
// specialization inlines the bodies fused tasks iterate.
type Pass struct {
	Name string
	Desc string
	run  func(p *Program, opt Options)
}

// Passes returns the full pipeline in canonical order.
func Passes() []Pass {
	return []Pass{
		{
			Name: "fuse",
			Desc: "merge tiny blocks along single-predecessor chains (runtime.FuseChains classification)",
			run:  fusePass,
		},
		{
			Name: "hoist",
			Desc: "resolve the §5.4 dependency addresses once at compile time into a CSR DAG",
			run:  hoistPass,
		},
		{
			Name: "specialize",
			Desc: "inline statement bodies and iterate blocks as run-length segments instead of guarded domain scans",
			run:  specializePass,
		},
		{
			Name: "narrow",
			Desc: "shrink array storage to the accessed box and seed dead/read-only arrays once",
			run:  narrowPass,
		},
	}
}

// ParsePasses resolves a -passes style selector: "" / "all" selects
// the whole pipeline, "none" selects nothing, otherwise a
// comma-separated subset of pass names (returned in canonical order).
func ParsePasses(spec string) ([]Pass, error) {
	switch strings.TrimSpace(spec) {
	case "", "all", "default":
		return Passes(), nil
	case "none":
		return nil, nil
	}
	want := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, ps := range Passes() {
			if ps.Name == name {
				found = true
				break
			}
		}
		if !found {
			var known []string
			for _, ps := range Passes() {
				known = append(known, ps.Name)
			}
			return nil, fmt.Errorf("ir: unknown pass %q (have %s, plus \"all\" and \"none\")",
				name, strings.Join(known, ", "))
		}
		want[name] = true
	}
	var out []Pass
	for _, ps := range Passes() {
		if want[ps.Name] {
			out = append(out, ps)
		}
	}
	return out, nil
}

// RunPasses applies the given passes to p in canonical order,
// recording one "ir.pass.<name>" phase per pass plus the ir.* effect
// metrics on opt.Obs.
func RunPasses(p *Program, passes []Pass, opt Options) {
	for _, ps := range passes {
		stop := opt.Obs.Phase("ir.pass." + ps.Name)
		ps.run(p, opt)
		stop()
		p.Applied = append(p.Applied, ps.Name)
	}
}

// fusePass merges tiny blocks along the static chains the hybrid
// scheduler classifies (runtime.FuseChains: consumer whose only
// predecessor is its producer). Walking each chain head-to-tail,
// consecutive tasks are merged while the merged task stays at or below
// the fusion threshold in iterations; a merged task runs its units
// back to back, exactly the inline handoff the hybrid executor
// performs dynamically, so results are unchanged while the emitted
// program carries fewer, meatier tasks.
func fusePass(p *Program, opt Options) {
	rt := p.rt
	if rt == nil || rt.NumTasks() != len(p.Tasks) {
		// Lowered task list no longer matches the runtime DAG the
		// classification was computed from (fuse already ran).
		return
	}
	threshold := opt.FuseThreshold
	if threshold <= 0 {
		threshold = DefaultFuseThreshold
	}
	rt.FuseChains()
	n := len(p.Tasks)
	group := make([]int, n)
	for i := range group {
		group[i] = i
	}
	for i := 0; i < n; i++ {
		if rt.FusedIn(i) {
			continue // interior of a chain; handled from its head
		}
		head := i
		total := p.Tasks[i].Iters()
		for next := rt.ChainNext(i); next >= 0; next = rt.ChainNext(next) {
			iters := p.Tasks[next].Iters()
			if total+iters <= threshold {
				group[next] = head
				total += iters
			} else {
				head = next
				total = iters
			}
		}
	}
	members := map[int][]int{}
	for id, head := range group {
		members[head] = append(members[head], id)
	}
	var tasks []Task
	fusedAway := 0
	for id := 0; id < n; id++ {
		if group[id] != id {
			continue
		}
		ids := members[id]
		if len(ids) == 1 {
			tasks = append(tasks, p.Tasks[id])
			continue
		}
		fusedAway += len(ids) - 1
		merged := Task{Label: fmt.Sprintf("%s+%d", p.Tasks[id].Label, len(ids)-1)}
		for _, m := range ids {
			t := &p.Tasks[m]
			merged.Units = append(merged.Units, t.Units...)
			merged.Outs = appendUnique(merged.Outs, t.Outs)
			merged.Ins = appendUnique(merged.Ins, t.Ins)
			merged.Serials = appendUnique(merged.Serials, t.Serials)
		}
		tasks = append(tasks, merged)
	}
	p.Tasks = tasks
	// The pre-fusion runtime DAG no longer matches the task list.
	p.rt = nil
	opt.Obs.Count("ir.blocks_fused", int64(fusedAway))
	opt.Obs.SetGauge("ir.tasks", int64(len(p.Tasks)))
}

func appendUnique(dst []int, src []int) []int {
	for _, v := range src {
		dup := false
		for _, w := range dst {
			if w == v {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, v)
		}
	}
	return dst
}

// hoistPass resolves the §5.4 dependency addresses once, at compile
// time, with exactly the runtime.Builder algorithm (In addresses
// against the last writer, serial keys against the last task of the
// same statement, in creation order), and freezes the result as the
// CSR DAG the emitted program embeds. Without it the emitted program
// ships the address tables and replays the resolution at startup —
// per-address map lookups the pass makes disappear entirely.
func hoistPass(p *Program, opt Options) {
	n := len(p.Tasks)
	preds := make([][]int32, n)
	lastWriter := map[int]int32{}
	lastSerial := map[int]int32{}
	addrs := 0
	for i := range p.Tasks {
		t := &p.Tasks[i]
		add := func(q int32) {
			if int(q) == i {
				return // producer fused into this very task
			}
			for _, have := range preds[i] {
				if have == q {
					return
				}
			}
			preds[i] = append(preds[i], q)
		}
		for _, addr := range t.Ins {
			if w, ok := lastWriter[addr]; ok {
				add(w)
			}
		}
		for _, key := range t.Serials {
			if key < 0 {
				continue
			}
			if q, ok := lastSerial[key]; ok {
				add(q)
			}
			lastSerial[key] = int32(i)
		}
		for _, addr := range t.Outs {
			if addr >= 0 {
				lastWriter[addr] = int32(i)
			}
		}
		addrs += len(t.Ins) + len(t.Outs) + len(t.Serials)
	}
	csr := &CSR{
		SuccOff: make([]int32, n+1),
		Indeg0:  make([]int32, n),
	}
	counts := make([]int32, n)
	for i := 0; i < n; i++ {
		csr.Indeg0[i] = int32(len(preds[i]))
		if len(preds[i]) == 0 {
			csr.Roots = append(csr.Roots, int32(i))
		}
		for _, q := range preds[i] {
			counts[q]++
		}
	}
	for i := 0; i < n; i++ {
		csr.SuccOff[i+1] = csr.SuccOff[i] + counts[i]
	}
	csr.Succs = make([]int32, csr.SuccOff[n])
	fill := make([]int32, n)
	copy(fill, csr.SuccOff[:n])
	for i := 0; i < n; i++ {
		for _, q := range preds[i] {
			csr.Succs[fill[q]] = int32(i)
			fill[q]++
		}
	}
	p.CSR = csr
	opt.Obs.Count("ir.addrs_hoisted", int64(addrs))
	opt.Obs.SetGauge("ir.edges", int64(csr.NumEdges()))
}

// specializePass converts every unit from "scan the full domain behind
// a lexicographic interval guard" to run-length segments covering
// exactly the block's members, and marks every statement body for
// inlining: the emitter then produces straight-line per-task loops
// with no per-iteration dispatch, guard, or bounds re-derivation.
func specializePass(p *Program, opt Options) {
	segs := 0
	for i := range p.Tasks {
		for j := range p.Tasks[i].Units {
			u := &p.Tasks[i].Units[j]
			u.Segs = segments(u.Members)
			segs += len(u.Segs)
		}
	}
	for i := range p.Stmts {
		p.Stmts[i].Inline = true
	}
	opt.Obs.Count("ir.bodies_specialized", int64(len(p.Stmts)))
	opt.Obs.Count("ir.segments", int64(segs))
}

// segments coalesces an execution-ordered member list into runs of
// consecutive innermost-dimension points.
func segments(members []isl.Vec) []Seg {
	var segs []Seg
	for k := 0; k < len(members); {
		start := members[k]
		n := 1
		d := len(start) - 1
		if d >= 0 {
			for k+n < len(members) {
				next := members[k+n]
				if next[d] != start[d]+n {
					break
				}
				same := true
				for o := 0; o < d; o++ {
					if next[o] != start[o] {
						same = false
						break
					}
				}
				if !same {
					break
				}
				n++
			}
		}
		segs = append(segs, Seg{Start: start, Len: n})
		k += n
	}
	return segs
}

// narrowPass shrinks every array's storage onto the canonical accessed
// bounding box (dropping the origin-anchored slack the naive layout
// allocates for shifted accesses) and marks dead and read-only arrays
// as seed-once: no run mutates them, so the emitted program skips
// their re-seed between the sequential and pipelined runs. Seeding and
// hashing always iterate the canonical box, so the result hash is
// unchanged by construction.
func narrowPass(p *Program, opt Options) {
	var saved, narrowed, readonly, dead int64
	for i := range p.Arrays {
		a := &p.Arrays[i]
		if diff := a.StorageSize - a.Size(); diff > 0 {
			saved += int64(diff)
			narrowed++
		}
		a.StorageOffset = a.Offset
		a.StorageExtent = a.Extent
		a.StorageSize = a.Size()
		if !a.Accessed {
			dead++
			a.SeedOnce = true
		} else if !a.Written {
			readonly++
			a.SeedOnce = true
		}
	}
	opt.Obs.Count("ir.arrays_narrowed", narrowed)
	opt.Obs.Count("ir.extent_cells_saved", saved)
	opt.Obs.Count("ir.arrays_readonly", readonly)
	opt.Obs.Count("ir.arrays_dead", dead)
}
