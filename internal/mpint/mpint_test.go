package mpint

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestNextPrimeSmall(t *testing.T) {
	cases := map[int64]int64{
		0: 2, 1: 2, 2: 3, 3: 5, 4: 5, 5: 7, 6: 7,
		7: 11, 8: 11, 9: 11, 10: 11, 11: 13,
		13: 17, 20: 23, 89: 97, 96: 97, 97: 101,
		-5: 2,
	}
	for in, want := range cases {
		got := NextPrime(new(big.Int), big.NewInt(in))
		if got.Int64() != want {
			t.Errorf("NextPrime(%d) = %d, want %d", in, got.Int64(), want)
		}
	}
}

func TestNextPrimeAliasing(t *testing.T) {
	z := big.NewInt(100)
	NextPrime(z, z)
	if z.Int64() != 101 {
		t.Fatalf("aliased NextPrime = %d", z.Int64())
	}
}

func TestQuickNextPrimeProperties(t *testing.T) {
	f := func(raw uint32) bool {
		z := big.NewInt(int64(raw % (1 << 22)))
		p := NextPrime(new(big.Int), z)
		// Strictly greater, prime, and no prime in between.
		if p.Cmp(z) <= 0 || !p.ProbablyPrime(20) {
			return false
		}
		for q := new(big.Int).Add(z, big.NewInt(1)); q.Cmp(p) < 0; q.Add(q, big.NewInt(1)) {
			if q.ProbablyPrime(20) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDataDeterminism(t *testing.T) {
	a := NewData(8, 42)
	b := NewData(8, 42)
	if a.Hash() != b.Hash() {
		t.Fatal("same seed, different data")
	}
	c := NewData(8, 43)
	if a.Hash() == c.Hash() {
		t.Fatal("different seeds, same hash")
	}
}

func TestDataCloneIndependence(t *testing.T) {
	a := NewData(4, 1)
	b := a.Clone()
	b.Words[0].SetInt64(-1)
	if a.Words[0].Sign() < 0 {
		t.Fatal("clone aliases original")
	}
	if a.Size() != 4 {
		t.Fatalf("size = %d", a.Size())
	}
}

func TestWorkDeterministicAndCostScales(t *testing.T) {
	dst1 := NewData(4, 7)
	dst2 := dst1.Clone()
	in := NewData(4, 9)
	Work(dst1, []*Data{in}, 2)
	Work(dst2, []*Data{in}, 2)
	if dst1.Hash() != dst2.Hash() {
		t.Fatal("Work not deterministic")
	}
	// All outputs are prime after num >= 1.
	for _, w := range dst1.Words {
		if !w.ProbablyPrime(20) {
			t.Fatalf("non-prime output %v", w)
		}
	}
	// num = 0 just sums.
	dst3 := NewData(4, 7)
	Work(dst3, []*Data{in}, 0)
	for k, w := range dst3.Words {
		want := new(big.Int).Add(NewData(4, 7).Words[k], in.Words[k])
		if w.Cmp(want) != 0 {
			t.Fatalf("word %d = %v, want %v", k, w, want)
		}
	}
}

func TestMatrixReseedRestores(t *testing.T) {
	m := NewMatrix(3, 4)
	m.Reseed(5)
	h := m.Hash()
	Work(m.At(1, 2), []*Data{m.At(0, 0)}, 1)
	if m.Hash() == h {
		t.Fatal("Work did not change the matrix")
	}
	m.Reseed(5)
	if m.Hash() != h {
		t.Fatal("Reseed did not restore contents")
	}
}
