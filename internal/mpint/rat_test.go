package mpint

import "testing"

func TestRatArithmetic(t *testing.T) {
	a := NewRat(1, 3)
	b := NewRat(1, 6)
	if got := a.Add(b); got.Cmp(NewRat(1, 2)) != 0 {
		t.Fatalf("1/3 + 1/6 = %v, want 1/2", got)
	}
	if got := a.Sub(b); got.Cmp(NewRat(1, 6)) != 0 {
		t.Fatalf("1/3 - 1/6 = %v, want 1/6", got)
	}
	if got := a.Mul(b); got.Cmp(NewRat(1, 18)) != 0 {
		t.Fatalf("1/3 * 1/6 = %v, want 1/18", got)
	}
	if got := a.Div(b); got.Cmp(RatFromInt(2)) != 0 {
		t.Fatalf("1/3 / 1/6 = %v, want 2", got)
	}
	if got := a.Neg(); got.Cmp(NewRat(-1, 3)) != 0 {
		t.Fatalf("-(1/3) = %v, want -1/3", got)
	}
}

func TestRatFloorCeil(t *testing.T) {
	cases := []struct {
		num, den    int64
		floor, ceil int64
	}{
		{7, 2, 3, 4},
		{-7, 2, -4, -3},
		{6, 3, 2, 2},
		{-6, 3, -2, -2},
		{0, 5, 0, 0},
		{1, 1000000, 0, 1},
		{-1, 1000000, -1, 0},
	}
	for _, c := range cases {
		r := NewRat(c.num, c.den)
		if got := r.Floor(); got != c.floor {
			t.Errorf("floor(%d/%d) = %d, want %d", c.num, c.den, got, c.floor)
		}
		if got := r.Ceil(); got != c.ceil {
			t.Errorf("ceil(%d/%d) = %d, want %d", c.num, c.den, got, c.ceil)
		}
	}
}

func TestRatZeroValueAndString(t *testing.T) {
	var z Rat
	if z.Sign() != 0 || !z.IsInt() {
		t.Fatalf("zero value is not 0: %v", z)
	}
	if s := NewRat(-3, 2).String(); s != "-3/2" {
		t.Fatalf("String() = %q, want -3/2", s)
	}
	if s := NewRat(14, 2).String(); s != "7" {
		t.Fatalf("String() = %q, want 7", s)
	}
}

func TestRatImmutability(t *testing.T) {
	a := NewRat(2, 3)
	b := NewRat(1, 3)
	_ = a.Add(b)
	_ = a.Mul(b)
	if a.Cmp(NewRat(2, 3)) != 0 || b.Cmp(NewRat(1, 3)) != 0 {
		t.Fatalf("operands mutated: a=%v b=%v", a, b)
	}
}
