// Package mpint is the stand-in for the GMP library used by the
// paper's first benchmark set (§6): multi-precision integers with a
// next_prime operation. The basic data structure, Data, mirrors the
// paper's gmp_data — an array of SIZE multi-precision integers — and
// Work mirrors the per-cell kernel: add the inputs element-wise, then
// advance each element to the num-th prime after it. The kernel is
// serial and compute-intensive, exactly the workload shape per-loop
// polyhedral optimizers gain nothing on.
package mpint

import "math/big"

// Data is an array of SIZE multi-precision integers (the gmp_data
// analogue).
type Data struct {
	Words []*big.Int
}

// NewData returns a Data with size elements seeded deterministically
// from seed. Values are sized so a next-prime search costs real work
// but stays fast enough for test suites.
func NewData(size int, seed uint64) *Data {
	d := &Data{Words: make([]*big.Int, size)}
	for k := range d.Words {
		v := mix(seed + uint64(k)*0x9e3779b97f4a7c15)
		// 21-bit values: next-prime searches scan ~14 candidates.
		d.Words[k] = big.NewInt(int64(v%(1<<21) + 3))
	}
	return d
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	return x ^ (x >> 33)
}

// Size returns the number of elements.
func (d *Data) Size() int { return len(d.Words) }

// Clone returns an independent deep copy.
func (d *Data) Clone() *Data {
	c := &Data{Words: make([]*big.Int, len(d.Words))}
	for k, w := range d.Words {
		c.Words[k] = new(big.Int).Set(w)
	}
	return c
}

// SetTo overwrites d with the contents of o.
func (d *Data) SetTo(o *Data) {
	for k := range d.Words {
		d.Words[k].Set(o.Words[k])
	}
}

// Hash digests the value, order-sensitively.
func (d *Data) Hash() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, w := range d.Words {
		for _, b := range w.Bytes() {
			h ^= uint64(b)
			h *= prime
		}
		h ^= uint64(w.Sign() + 2)
		h *= prime
	}
	return h
}

// NextPrime sets dst to the smallest prime strictly greater than z and
// returns dst (GMP's mpz_nextprime). dst and z may alias.
func NextPrime(dst, z *big.Int) *big.Int {
	one := big.NewInt(1)
	two := big.NewInt(2)
	dst.Set(z)
	dst.Add(dst, one)
	if dst.Cmp(two) <= 0 {
		return dst.Set(two)
	}
	if dst.Bit(0) == 0 { // even and > 2: move to the next odd
		dst.Add(dst, one)
	}
	for !dst.ProbablyPrime(20) {
		dst.Add(dst, two)
	}
	return dst
}

// Work implements the paper's compute kernel for one matrix cell:
// element-wise it sums dst and the inputs, then replaces each element
// with the num-th prime after the sum. num scales the compute cost
// (the num_i column of Table 9).
func Work(dst *Data, inputs []*Data, num int) {
	tmp := new(big.Int)
	for k := range dst.Words {
		sum := tmp.Set(dst.Words[k])
		for _, in := range inputs {
			sum.Add(sum, in.Words[k])
		}
		for step := 0; step < num; step++ {
			NextPrime(sum, sum)
		}
		dst.Words[k].Set(sum)
	}
}

// Matrix is an N×N grid of Data cells, the A_i matrices of Table 9.
type Matrix struct {
	N    int
	size int
	Cell []*Data // row-major
}

// NewMatrix allocates an N×N matrix whose cells hold size elements.
func NewMatrix(n, size int) *Matrix {
	m := &Matrix{N: n, size: size, Cell: make([]*Data, n*n)}
	for i := range m.Cell {
		m.Cell[i] = NewData(size, uint64(i))
	}
	return m
}

// At returns the cell at row i, column j.
func (m *Matrix) At(i, j int) *Data { return m.Cell[i*m.N+j] }

// Reseed restores the deterministic initial contents.
func (m *Matrix) Reseed(stream uint64) {
	for idx := range m.Cell {
		fresh := NewData(m.size, stream*0x100000001+uint64(idx))
		m.Cell[idx].SetTo(fresh)
	}
}

// Hash digests the whole matrix.
func (m *Matrix) Hash() uint64 {
	h := uint64(0)
	for _, c := range m.Cell {
		h = h*1099511628211 ^ c.Hash()
	}
	return h
}
