// Exact rational arithmetic for the symbolic isl backend.
//
// The Fourier–Motzkin eliminator in internal/isl/sym combines
// inequality rows with positive rational multipliers; doing that in
// machine integers silently overflows once coefficients compound
// across eliminations. Rat wraps math/big.Rat behind the small API the
// solver needs — construction from machine integers, ring operations,
// comparisons, and the integer floor/ceil used when rounding rational
// vertices to lattice points.
package mpint

import "math/big"

// Rat is an immutable exact rational. The zero value is 0/1 and ready
// to use. All operations return fresh values; operands are never
// mutated, so Rats can be shared freely across goroutines.
type Rat struct {
	r big.Rat
}

// NewRat returns the rational num/den. den must be non-zero.
func NewRat(num, den int64) Rat {
	var out Rat
	out.r.SetFrac64(num, den)
	return out
}

// RatFromInt returns v as a rational.
func RatFromInt(v int64) Rat {
	var out Rat
	out.r.SetInt64(v)
	return out
}

// Add returns a + b.
func (a Rat) Add(b Rat) Rat {
	var out Rat
	out.r.Add(&a.r, &b.r)
	return out
}

// Sub returns a - b.
func (a Rat) Sub(b Rat) Rat {
	var out Rat
	out.r.Sub(&a.r, &b.r)
	return out
}

// Mul returns a * b.
func (a Rat) Mul(b Rat) Rat {
	var out Rat
	out.r.Mul(&a.r, &b.r)
	return out
}

// Div returns a / b. b must be non-zero.
func (a Rat) Div(b Rat) Rat {
	var out Rat
	out.r.Quo(&a.r, &b.r)
	return out
}

// Neg returns -a.
func (a Rat) Neg() Rat {
	var out Rat
	out.r.Neg(&a.r)
	return out
}

// Cmp returns -1, 0, or +1 as a is less than, equal to, or greater
// than b.
func (a Rat) Cmp(b Rat) int { return a.r.Cmp(&b.r) }

// Sign returns -1, 0, or +1 by the sign of a.
func (a Rat) Sign() int { return a.r.Sign() }

// IsInt reports whether a is an integer.
func (a Rat) IsInt() bool { return a.r.IsInt() }

// Floor returns the largest integer <= a. It panics if the result does
// not fit an int64, which cannot happen for the bounded systems the
// solver builds from int64 constraint coefficients.
func (a Rat) Floor() int64 {
	var q, m big.Int
	q.QuoRem(a.r.Num(), a.r.Denom(), &m)
	if m.Sign() < 0 {
		q.Sub(&q, big.NewInt(1))
	}
	if !q.IsInt64() {
		panic("mpint: Rat.Floor overflows int64")
	}
	return q.Int64()
}

// Ceil returns the smallest integer >= a, with the same overflow
// contract as Floor.
func (a Rat) Ceil() int64 {
	var q, m big.Int
	q.QuoRem(a.r.Num(), a.r.Denom(), &m)
	if m.Sign() > 0 {
		q.Add(&q, big.NewInt(1))
	}
	if !q.IsInt64() {
		panic("mpint: Rat.Ceil overflows int64")
	}
	return q.Int64()
}

// String renders a in lowest terms ("-3/2", "7").
func (a Rat) String() string {
	if a.r.IsInt() {
		return a.r.Num().String()
	}
	return a.r.RatString()
}
