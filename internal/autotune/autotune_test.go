package autotune

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/obs"
)

func TestTuneP4FindsValidGranularity(t *testing.T) {
	p, err := kernels.Table9Program("P4", 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	res, err := Tune(p, Config{Workers: 2, Reps: 1, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Chosen < 1 || res.Chosen > 32 {
		t.Fatalf("Chosen = %d", res.Chosen)
	}
	if res.Evals != len(res.Samples) || res.Evals < 1 || res.Evals > DefaultBudget {
		t.Fatalf("Evals = %d, len(Samples) = %d", res.Evals, len(res.Samples))
	}
	if res.Baseline.BlockIters != 1 {
		t.Fatalf("baseline block iters = %d", res.Baseline.BlockIters)
	}
	if res.Best.Elapsed > res.Baseline.Elapsed {
		t.Fatalf("best (%v) worse than baseline (%v)", res.Best.Elapsed, res.Baseline.Elapsed)
	}
	// Memoization: no granularity evaluated twice.
	seen := map[int]bool{}
	for _, s := range res.Samples {
		if seen[s.BlockIters] {
			t.Fatalf("granularity %d evaluated twice", s.BlockIters)
		}
		seen[s.BlockIters] = true
		if s.Tasks <= 0 || s.Elapsed <= 0 {
			t.Fatalf("degenerate sample %+v", s)
		}
	}
	snap := rec.Snapshot()
	if got := snap.Counter("autotune.iterations"); got != int64(res.Evals) {
		t.Fatalf("autotune.iterations = %d, want %d", got, res.Evals)
	}
	if got := snap.Gauge("autotune.block_iters_chosen"); got != int64(res.Chosen) {
		t.Fatalf("autotune.block_iters_chosen = %d, want %d", got, res.Chosen)
	}
	found := false
	for _, ph := range rec.Phases.Spans() {
		if ph.Name == "autotune" {
			found = true
		}
	}
	if !found {
		t.Fatal("no autotune phase span recorded")
	}
	if res.Speedup() <= 0 {
		t.Fatalf("Speedup = %v", res.Speedup())
	}
}

func TestTuneBudgetOne(t *testing.T) {
	p := kernels.Listing3(24)
	res, err := Tune(p, Config{Workers: 2, Budget: 1, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != 1 || res.Chosen != 1 {
		t.Fatalf("Evals = %d, Chosen = %d", res.Evals, res.Chosen)
	}
	if res.Converged {
		t.Fatal("a single evaluation cannot have converged")
	}
}

func TestTuneRespectsBaseAndCeiling(t *testing.T) {
	p := kernels.Listing3(32)
	res, err := Tune(p, Config{
		Workers:       2,
		Reps:          1,
		Detect:        core.Options{MinBlockIters: 4},
		MaxBlockIters: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline.BlockIters != 4 {
		t.Fatalf("baseline block iters = %d, want 4", res.Baseline.BlockIters)
	}
	for _, s := range res.Samples {
		if s.BlockIters < 1 || s.BlockIters > 8 {
			t.Fatalf("sample outside [1, 8]: %+v", s)
		}
	}
}

func TestTuneHybridMeasuresChainFusion(t *testing.T) {
	p, err := kernels.Table9Program("P4", 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Tune(p, Config{Workers: 2, Reps: 1, Hybrid: true, Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline.ChainFused == 0 {
		t.Fatal("hybrid tuning measured no fused chains on P4")
	}
}

func TestTuneProfilesAreInternallyConsistent(t *testing.T) {
	p := kernels.Listing1(48)
	res, err := Tune(p, Config{Workers: 2, Reps: 1, Budget: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		if s.Critical <= 0 {
			t.Fatalf("no critical path measured: %+v", s)
		}
		if s.Critical > s.Elapsed*2 {
			// The realized critical path is built from the same spans
			// as the run; it can exceed wall time only by measurement
			// skew, never structurally.
			t.Fatalf("critical path %v vastly exceeds elapsed %v", s.Critical, s.Elapsed)
		}
		if s.QueuePeak < 1 {
			t.Fatalf("queue peak = %d: %+v", s.QueuePeak, s)
		}
	}
}
