// Package autotune closes the feedback loop the observability layer
// opened: it executes a program's detected block pipeline under
// instrumentation, reads the realized critical path and the
// stall/steal/queue-depth profile back out of internal/obs, scores
// the blocking, and re-derives the block program at a different
// MinBlockIters granularity (re-entering core.Detect and codegen
// with the candidate) until the search converges on a per-kernel
// block size. The search is a doubling sweep to bracket the optimum
// followed by golden-section refinement on the bracketed integer
// interval; every candidate evaluation is memoized and verified
// bit-identical against the sequential reference.
//
// The paper's Eq. 3 blocking fixes granularity at detect time; this
// package is the run-time answer to its §7 question of how coarse
// the blocks should be on a given host: fine blocking exposes
// parallelism but pays per-task scheduling overhead, coarse blocking
// amortizes overhead but lengthens the critical path. The measured
// crossover is the tuned block size.
package autotune

import (
	"fmt"
	"time"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/trace"
)

// DefaultBudget bounds the number of candidate evaluations when
// Config.Budget is zero.
const DefaultBudget = 12

// Sample is one evaluated candidate granularity with the profile the
// instrumented run measured: wall time (best of Config.Reps), the
// realized critical path of the executed DAG, and the runtime.*
// stall/steal/queue-depth/chain-fusion readings.
type Sample struct {
	BlockIters int           `json:"block_iters"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	Tasks      int           `json:"tasks"`
	Edges      int           `json:"edges"`
	Critical   time.Duration `json:"critical_ns"`
	StallNs    int64         `json:"stall_ns"`
	Steals     int64         `json:"steals"`
	ChainFused int64         `json:"chain_fused"`
	QueuePeak  int64         `json:"queue_peak"`
}

// Config tunes the search.
type Config struct {
	// Workers is the execution worker count candidates are scored at
	// (0 = GOMAXPROCS).
	Workers int
	// Detect is the base detection configuration; its MinBlockIters is
	// the search's starting granularity (0/1 = the pure Eq. 3
	// blocking) and the rest is passed through to core.Detect.
	Detect core.Options
	// Hybrid scores candidates under the static/dynamic hybrid
	// schedule (codegen.CompileOptions.HybridSchedule).
	Hybrid bool
	// Budget caps candidate evaluations (0 = DefaultBudget).
	Budget int
	// Reps is the number of timed runs per candidate, best-of
	// (0 = 2).
	Reps int
	// MaxBlockIters caps the search (0 = the largest statement domain
	// cardinality, i.e. one block per statement).
	MaxBlockIters int
	// Obs, when non-nil, receives the autotune.iterations counter,
	// the autotune.block_iters_chosen gauge, and an "autotune" phase
	// span.
	Obs *obs.Recorder
}

// Result is the outcome of one tuning run.
type Result struct {
	// Chosen is the tuned MinBlockIters granularity.
	Chosen int `json:"chosen"`
	// Best is Chosen's sample.
	Best Sample `json:"best"`
	// Baseline is the starting granularity's sample (the fixed Eq. 3
	// blocking when Config.Detect.MinBlockIters was 0/1).
	Baseline Sample `json:"baseline"`
	// Samples lists every evaluation in search order.
	Samples []Sample `json:"samples"`
	// Evals counts candidate evaluations (== len(Samples)).
	Evals int `json:"evals"`
	// Converged reports the search closed its bracket before
	// exhausting the budget (as opposed to stopping on Budget).
	Converged bool `json:"converged"`
}

// Speedup returns the tuned blocking's wall-time improvement over
// the baseline blocking (1.0 = unchanged).
func (r *Result) Speedup() float64 {
	if r.Best.Elapsed <= 0 {
		return 1
	}
	return float64(r.Baseline.Elapsed) / float64(r.Best.Elapsed)
}

// Tune searches MinBlockIters for the program and returns the tuned
// granularity with the full evaluation trail. The program must carry
// executable bodies; its arrays are reset before every run and left
// in the tuned run's final state.
func Tune(p *kernels.Program, cfg Config) (*Result, error) {
	workers := par.Workers(cfg.Workers)
	budget := cfg.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}
	reps := cfg.Reps
	if reps <= 0 {
		reps = 2
	}
	rec := cfg.Obs
	defer rec.Phase("autotune")()

	ceiling := cfg.MaxBlockIters
	if ceiling <= 0 {
		for _, s := range p.SCoP.Stmts {
			if c := s.Domain.Card(); c > ceiling {
				ceiling = c
			}
		}
	}
	if ceiling < 1 {
		ceiling = 1
	}

	// Every candidate must reproduce the sequential result exactly.
	want := exec.Sequential(p).Hash

	res := &Result{}
	memo := map[int]Sample{}
	// eval scores one granularity, memoized; ok is false once the
	// budget is spent.
	eval := func(b int) (s Sample, ok bool, err error) {
		if s, hit := memo[b]; hit {
			return s, true, nil
		}
		if res.Evals >= budget {
			return Sample{}, false, nil
		}
		res.Evals++
		rec.Count("autotune.iterations", 1)
		s, err = evaluate(p, b, workers, reps, cfg, want)
		if err != nil {
			return Sample{}, false, err
		}
		memo[b] = s
		res.Samples = append(res.Samples, s)
		return s, true, nil
	}

	base := cfg.Detect.MinBlockIters
	if base < 1 {
		base = 1
	}
	baseline, _, err := eval(base)
	if err != nil {
		return nil, err
	}
	res.Baseline = baseline
	best := baseline

	// Phase 1 — doubling sweep: coarsen until a rung measures worse
	// than the previous one (the optimum is bracketed), the blocking
	// collapses below the worker count (coarser can only serialize),
	// or the run already executes at its own realized critical path
	// (scheduling overhead is gone; coarser can only lengthen the
	// path).
	prev := baseline
	bracketed := false
	for b := base * 2; b <= ceiling; b *= 2 {
		s, ok, err := eval(b)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if s.Elapsed < best.Elapsed {
			best = s
		}
		if s.Elapsed > prev.Elapsed {
			bracketed = true
			break
		}
		if s.Tasks <= workers {
			bracketed = true
			break
		}
		if s.Critical > 0 && s.Elapsed <= s.Critical+s.Critical/20 {
			bracketed = true
			break
		}
		prev = s
	}

	// Phase 2 — golden-section refinement on the bracketing interval
	// around the doubling winner.
	lo, hi := best.BlockIters/2, best.BlockIters*2
	if lo < 1 {
		lo = 1
	}
	if hi > ceiling {
		hi = ceiling
	}
	const phi = 0.6180339887498949
	outOfBudget := false
	for hi-lo > 2 {
		step := int(phi*float64(hi-lo) + 0.5)
		x1, x2 := hi-step, lo+step
		if x1 < lo+1 {
			x1 = lo + 1
		}
		if x2 > hi-1 {
			x2 = hi - 1
		}
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		if x1 == x2 {
			x2++
		}
		s1, ok, err := eval(x1)
		if err != nil {
			return nil, err
		}
		if !ok {
			outOfBudget = true
			break
		}
		s2, ok, err := eval(x2)
		if err != nil {
			return nil, err
		}
		if !ok {
			outOfBudget = true
			break
		}
		if s1.Elapsed <= s2.Elapsed {
			hi = x2
			if s1.Elapsed < best.Elapsed {
				best = s1
			}
		} else {
			lo = x1
			if s2.Elapsed < best.Elapsed {
				best = s2
			}
		}
	}
	if hi-lo == 2 && !outOfBudget {
		if s, ok, err := eval(lo + 1); err != nil {
			return nil, err
		} else if ok && s.Elapsed < best.Elapsed {
			best = s
		}
	}
	res.Converged = bracketed && !outOfBudget || best.BlockIters == ceiling

	res.Best = best
	res.Chosen = best.BlockIters
	rec.SetGauge("autotune.block_iters_chosen", int64(res.Chosen))
	return res, nil
}

// evaluate detects, compiles, and lowers the program at granularity b
// and times reps executions, keeping the best run's profile. Every
// run's result hash is checked against the sequential reference.
func evaluate(p *kernels.Program, b, workers, reps int, cfg Config, want uint64) (Sample, error) {
	opts := cfg.Detect
	opts.MinBlockIters = b
	opts.Obs = nil
	info, err := core.Detect(p.SCoP, opts)
	if err != nil {
		return Sample{}, fmt.Errorf("autotune: detect at blockIters=%d: %w", b, err)
	}
	prog, err := codegen.CompileWithOptions(info, codegen.CompileOptions{HybridSchedule: cfg.Hybrid})
	if err != nil {
		return Sample{}, fmt.Errorf("autotune: compile at blockIters=%d: %w", b, err)
	}
	ir := prog.Lower()
	s := Sample{BlockIters: b, Tasks: ir.NumTasks(), Edges: ir.NumEdges()}
	edges := prog.PrecedenceEdges()
	for r := 0; r < reps; r++ {
		reg := obs.NewRegistry()
		c := trace.NewCollector()
		c.SetRegistry(reg)
		eo := prog.ExecOpts()
		eo.Trace = c.Hook()
		eo.Reg = reg
		p.Reset()
		start := time.Now()
		ir.Execute(workers, eo)
		elapsed := time.Since(start)
		if got := p.Hash(); got != want {
			return Sample{}, fmt.Errorf("autotune: blockIters=%d result hash %x differs from sequential %x", b, got, want)
		}
		if r > 0 && elapsed >= s.Elapsed {
			continue
		}
		s.Elapsed = elapsed
		an := c.Analyze()
		s.Critical = trace.ComputeCriticalPath(an.Spans, edges).Length
		snap := reg.Snapshot()
		s.StallNs = snap.Counter("runtime.stall_ns_total")
		s.Steals = snap.Counter("runtime.steal_count")
		s.ChainFused = snap.Counter("runtime.chain_fused")
		s.QueuePeak = snap.Gauge("runtime.queue_depth_peak")
	}
	return s, nil
}
