package kernels_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/kernels"
)

func TestJacobiChainVerifiesAndIsParallel(t *testing.T) {
	p := kernels.JacobiChain(14, 3)
	if err := exec.Verify(p, 4, core.Options{}); err != nil {
		t.Fatal(err)
	}
	// Every Jacobi nest is fully parallel (reads only the previous
	// stage's array).
	if got := exec.ParallelizableNests(p); got != 3 {
		t.Fatalf("parallelizable nests = %d, want 3", got)
	}
	// Cross-loop pipelining also applies: 3 pipeline pairs chained.
	info, err := core.Detect(p.SCoP, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Pairs) != 2 {
		t.Fatalf("pairs = %d, want 2 (J1->J2, J2->J3)", len(info.Pairs))
	}
	// Hybrid execution: parallel bodies inside pipelined blocks.
	want := exec.Sequential(p).Hash
	res, err := exec.PipelinedHybrid(p, 2, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash != want {
		t.Fatal("hybrid jacobi differs from sequential")
	}
}

func TestSeidelChainVerifiesAndIsSerial(t *testing.T) {
	p := kernels.SeidelChain(14, 4)
	if err := exec.Verify(p, 4, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if got := exec.ParallelizableNests(p); got != 0 {
		t.Fatalf("parallelizable nests = %d, want 0 (Seidel serializes)", got)
	}
	info, err := core.Detect(p.SCoP, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Pairs) != 3 {
		t.Fatalf("pairs = %d, want 3", len(info.Pairs))
	}
}

func TestTriangularChainEndToEnd(t *testing.T) {
	p := kernels.TriangularChain(12)
	s := p.SCoP.Statement("S")
	// Triangular domain: n(n+1)/2 points.
	if got, want := s.Domain.Card(), 12*13/2; got != want {
		t.Fatalf("S domain card = %d, want %d", got, want)
	}
	if err := exec.Verify(p, 4, core.Options{}); err != nil {
		t.Fatal(err)
	}
	info, err := core.Detect(p.SCoP, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The identity read gives a per-iteration pipeline: T's blocks are
	// single iterations.
	tInfo := info.Stmt("T")
	if len(tInfo.Blocks) != 12*13/2 {
		t.Fatalf("T blocks = %d", len(tInfo.Blocks))
	}
	if len(tInfo.InDeps) != 1 {
		t.Fatalf("T in-deps = %d", len(tInfo.InDeps))
	}
}

func TestExtraKernelPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { kernels.JacobiChain(2, 1) },
		func() { kernels.SeidelChain(14, 0) },
		func() { kernels.TriangularChain(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
