package kernels

import (
	"repro/internal/isl"
	"repro/internal/isl/aff"
	"repro/internal/scop"
)

// Listing1 builds the paper's motivating two-nest program (Listing 1)
// with executable float64 bodies:
//
//	for(i=0;i<N-1;i++) for(j=0;j<N-1;j++)
//	  S: A[i][j] = f(A[i][j], A[i][j+1], A[i+1][j+1]);
//	for(i=0;i<N/2-1;i++) for(j=0;j<N/2-1;j++)
//	  R: B[i][j] = g(A[i][2j], B[i][j+1], B[i+1][j+1], B[i][j]);
//
// Polly finds no parallel loop in either nest (both carry anti
// dependences), but iterations of R can be pipelined with iterations
// of S.
func Listing1(n int) *Program {
	if n < 4 {
		panic("kernels: Listing1 requires n >= 4")
	}
	a := NewGrid(n)
	bGrid := NewGrid(n)

	b := scop.NewBuilder("listing1")
	b.Array("A", 2).Array("B", 2)
	b.Stmt("S", aff.RectDomain("S", n-1, n-1)).
		Writes("A", aff.Var(2, 0), aff.Var(2, 1)).
		Reads("A", aff.Var(2, 0), aff.Var(2, 1)).
		Reads("A", aff.Var(2, 0), aff.Linear(1, 0, 1)).
		Reads("A", aff.Linear(1, 1, 0), aff.Linear(1, 0, 1)).
		Body(func(iv isl.Vec) {
			i, j := iv[0], iv[1]
			a.Set(i, j, stencilF(a.At(i, j), a.At(i, j+1), a.At(i+1, j+1)))
		})
	b.Stmt("R", aff.RectDomain("R", n/2-1, n/2-1)).
		Writes("B", aff.Var(2, 0), aff.Var(2, 1)).
		Reads("A", aff.Var(2, 0), aff.Linear(0, 0, 2)).
		Reads("B", aff.Var(2, 0), aff.Linear(1, 0, 1)).
		Reads("B", aff.Linear(1, 1, 0), aff.Linear(1, 0, 1)).
		Reads("B", aff.Var(2, 0), aff.Var(2, 1)).
		Body(func(iv isl.Vec) {
			i, j := iv[0], iv[1]
			bGrid.Set(i, j, stencilG(a.At(i, 2*j), bGrid.At(i, j+1), bGrid.At(i+1, j+1), bGrid.At(i, j)))
		})
	sc := b.MustBuild()

	reset := func() {
		a.SeedDeterministic(1)
		bGrid.SeedDeterministic(2)
	}
	reset()
	return &Program{
		Name:  "listing1",
		SCoP:  sc,
		Reset: reset,
		Hash:  func() uint64 { return a.Hash() ^ splitmix(bGrid.Hash()) },
	}
}

// Listing3 builds the three-nest extension (Listing 3 / Figure 3),
// which adds
//
//	for(i=0;i<N/2-1;i++) for(j=0;j<N/2-1;j++)
//	  U: C[i][j] = h(A[2i][2j], B[i][j], C[i][j+1], C[i+1][j+1], C[i][j]);
//
// so that S feeds both R and U, and R feeds U.
func Listing3(n int) *Program {
	if n < 4 {
		panic("kernels: Listing3 requires n >= 4")
	}
	a := NewGrid(n)
	bGrid := NewGrid(n)
	c := NewGrid(n)

	b := scop.NewBuilder("listing3")
	b.Array("A", 2).Array("B", 2).Array("C", 2)
	b.Stmt("S", aff.RectDomain("S", n-1, n-1)).
		Writes("A", aff.Var(2, 0), aff.Var(2, 1)).
		Reads("A", aff.Var(2, 0), aff.Var(2, 1)).
		Reads("A", aff.Var(2, 0), aff.Linear(1, 0, 1)).
		Reads("A", aff.Linear(1, 1, 0), aff.Linear(1, 0, 1)).
		Body(func(iv isl.Vec) {
			i, j := iv[0], iv[1]
			a.Set(i, j, stencilF(a.At(i, j), a.At(i, j+1), a.At(i+1, j+1)))
		})
	b.Stmt("R", aff.RectDomain("R", n/2-1, n/2-1)).
		Writes("B", aff.Var(2, 0), aff.Var(2, 1)).
		Reads("A", aff.Var(2, 0), aff.Linear(0, 0, 2)).
		Reads("B", aff.Var(2, 0), aff.Linear(1, 0, 1)).
		Reads("B", aff.Linear(1, 1, 0), aff.Linear(1, 0, 1)).
		Reads("B", aff.Var(2, 0), aff.Var(2, 1)).
		Body(func(iv isl.Vec) {
			i, j := iv[0], iv[1]
			bGrid.Set(i, j, stencilG(a.At(i, 2*j), bGrid.At(i, j+1), bGrid.At(i+1, j+1), bGrid.At(i, j)))
		})
	b.Stmt("U", aff.RectDomain("U", n/2-1, n/2-1)).
		Writes("C", aff.Var(2, 0), aff.Var(2, 1)).
		Reads("A", aff.Linear(0, 2, 0), aff.Linear(0, 0, 2)).
		Reads("B", aff.Var(2, 0), aff.Var(2, 1)).
		Reads("C", aff.Var(2, 0), aff.Linear(1, 0, 1)).
		Reads("C", aff.Linear(1, 1, 0), aff.Linear(1, 0, 1)).
		Reads("C", aff.Var(2, 0), aff.Var(2, 1)).
		Body(func(iv isl.Vec) {
			i, j := iv[0], iv[1]
			c.Set(i, j, stencilH(a.At(2*i, 2*j), bGrid.At(i, j), c.At(i, j+1), c.At(i+1, j+1), c.At(i, j)))
		})
	sc := b.MustBuild()

	reset := func() {
		a.SeedDeterministic(1)
		bGrid.SeedDeterministic(2)
		c.SeedDeterministic(3)
	}
	reset()
	return &Program{
		Name:  "listing3",
		SCoP:  sc,
		Reset: reset,
		Hash: func() uint64 {
			return a.Hash() ^ splitmix(bGrid.Hash()) ^ splitmix(splitmix(c.Hash()))
		},
	}
}

// stencilF is the compute body f of statement S.
func stencilF(x, y, z float64) float64 {
	return 0.25*x + 0.35*y + 0.40*z + 1.0
}

// stencilG is the compute body g of statement R.
func stencilG(x, y, z, w float64) float64 {
	return 0.25*(x+y+z+w) - 2.0
}

// stencilH is the compute body h of statement U.
func stencilH(x, y, z, w, v float64) float64 {
	return 0.2*(x+y+z+w+v) + 0.5
}
