package kernels

import (
	"fmt"

	"repro/internal/isl"
	"repro/internal/isl/aff"
	"repro/internal/scop"
)

// This file builds the second benchmark set (§6, Figure 11): chains of
// n = 2, 3, 4 matrix multiplications (the Polybench 2mm/3mm kernels
// plus a 4mm extension), executed — as in the paper — as consecutive
// vector–matrix multiplications: one statement instance computes one
// row of the chain's next matrix, so iteration domains are
// 1-dimensional and memory is modelled at row granularity (exactly the
// granularity the tasking layer synchronizes on).
//
// Variants:
//
//	MM   — C_k = C_{k-1} × B_k. Rows are independent: Polly's per-loop
//	       parallelization wins here.
//	MMT  — like MM with every B_k transposed beforehand (better
//	       locality in the dot products); same dependence structure.
//	GMM  — generalized MM: after the product, each row is combined
//	       with the *original* next row of the same output matrix
//	       (C[i+1][j]) and its own previous column (C[i][j-1]),
//	       serializing every nest. Polly finds nothing; only cross-loop
//	       pipelining helps.
//	GMMT — GMM with transposed operands.
type Variant int

// Variants of the matrix-multiplication chains.
const (
	MM Variant = iota
	MMT
	GMM
	GMMT
)

// String names the variant as in Figure 11 ("mm", "mmt", "gmm", "gmmt").
func (v Variant) String() string {
	switch v {
	case MM:
		return "mm"
	case MMT:
		return "mmt"
	case GMM:
		return "gmm"
	case GMMT:
		return "gmmt"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

func (v Variant) transposed() bool  { return v == MMT || v == GMMT }
func (v Variant) generalized() bool { return v == GMM || v == GMMT }

// MMChain builds the n-chain (n in 2..4 in the paper, any n >= 1 here)
// of matrix multiplications over rows×rows float64 matrices.
func MMChain(n, rows int, variant Variant) *Program {
	if n < 1 || rows < 2 {
		panic(fmt.Sprintf("kernels: MMChain(n=%d, rows=%d)", n, rows))
	}
	// c[0] is the input matrix; c[k] = c[k-1] × b[k].
	c := make([]*Grid, n+1)
	bOps := make([]*Grid, n+1)
	for k := 0; k <= n; k++ {
		c[k] = NewGrid(rows)
		if k > 0 {
			bOps[k] = NewGrid(rows)
		}
	}

	sb := scop.NewBuilder(fmt.Sprintf("%d%s", n, variant))
	for k := 0; k <= n; k++ {
		sb.Array(rowArray(k), 1)
	}
	for k := 1; k <= n; k++ {
		name := fmt.Sprintf("S%d", k)
		stmt := sb.Stmt(name, aff.RectDomain(name, rows)).
			Writes(rowArray(k), aff.Var(1, 0)).
			Reads(rowArray(k-1), aff.Var(1, 0))
		if variant.generalized() {
			// Original-value reads of the own matrix serialize the nest.
			stmt.Reads(rowArray(k), aff.Var(1, 0)).
				Reads(rowArray(k), aff.Linear(1, 1))
		}
		src, dst, op := c[k-1], c[k], bOps[k]
		stmt.Body(rowBody(src, dst, op, variant))
	}
	sc := sb.MustBuild()

	reset := func() {
		for k := 0; k <= n; k++ {
			c[k].SeedDeterministic(uint64(10 + k))
			if k > 0 {
				seedOperand(bOps[k], uint64(100+k), variant.transposed())
			}
		}
	}
	reset()
	return &Program{
		Name:  fmt.Sprintf("%d%s", n, variant),
		SCoP:  sc,
		Reset: reset,
		Hash: func() uint64 {
			h := uint64(0)
			for k := 1; k <= n; k++ {
				h = h*1099511628211 ^ c[k].Hash()
			}
			return h
		},
	}
}

func rowArray(k int) string { return fmt.Sprintf("C%d", k) }

// seedOperand fills an operand matrix; for transposed variants it
// stores B^T so the dot product walks rows contiguously, mirroring the
// paper's nmmt kernels where the second matrix is transposed
// beforehand.
func seedOperand(g *Grid, seed uint64, transposed bool) {
	g.SeedDeterministic(seed)
	if transposed {
		for i := 0; i < g.N; i++ {
			for j := i + 1; j < g.N; j++ {
				v := g.At(i, j)
				g.Set(i, j, g.At(j, i))
				g.Set(j, i, v)
			}
		}
	}
}

// rowBody returns the statement body computing row i of dst from row i
// of src times op (optionally transposed), with the generalized
// variants folding in the original dst rows.
func rowBody(src, dst, op *Grid, variant Variant) scop.Body {
	n := dst.N
	transposed := variant.transposed()
	generalized := variant.generalized()
	return func(iv isl.Vec) {
		i := iv[0]
		srcRow := src.Row(i)
		out := make([]float64, n)
		if transposed {
			for j := 0; j < n; j++ {
				opRow := op.Row(j) // B^T row j is B column j
				acc := 0.0
				for t := 0; t < n; t++ {
					acc += srcRow[t] * opRow[t]
				}
				out[j] = acc
			}
		} else {
			for j := 0; j < n; j++ {
				acc := 0.0
				for t := 0; t < n; t++ {
					acc += srcRow[t] * op.At(t, j)
				}
				out[j] = acc
			}
		}
		if generalized {
			// Combine with original values of the next row and the
			// previous column of this row (read before overwriting).
			next := i
			if i+1 < n {
				next = i + 1
			}
			nextRow := dst.Row(next)
			ownRow := dst.Row(i)
			prev := ownRow[0]
			for j := 0; j < n; j++ {
				left := prev
				if j > 0 {
					left = ownRow[j-1]
				}
				out[j] = out[j]*1e-4 + 0.5*nextRow[j] + 0.25*left
			}
		}
		copy(dst.Row(i), out)
	}
}
