package kernels

import (
	"fmt"

	"repro/internal/isl"
	"repro/internal/isl/aff"
	"repro/internal/scop"
)

// This file adds evaluation kernels beyond the paper's two benchmark
// sets, exercising shapes the main kernels do not: fully parallel
// stage chains (JacobiChain), serial in-place-style chains
// (SeidelChain), and non-rectangular (triangular) iteration domains
// (TriangularChain).

// JacobiChain builds `stages` consecutive Jacobi-style smoothing
// nests: stage k writes A_k[i][j] from the neighbours of A_{k-1}.
// Every nest is fully data-parallel (reads touch only the previous
// array), so both the Polly baseline and cross-loop pipelining apply —
// the friendly end of the spectrum.
func JacobiChain(n, stages int) *Program {
	if n < 4 || stages < 1 {
		panic(fmt.Sprintf("kernels: JacobiChain(n=%d, stages=%d)", n, stages))
	}
	grids := make([]*Grid, stages+1)
	for k := range grids {
		grids[k] = NewGrid(n)
	}
	b := scop.NewBuilder(fmt.Sprintf("jacobi%d", stages))
	for k := 0; k <= stages; k++ {
		b.Array(jacArr(k), 2)
	}
	for k := 1; k <= stages; k++ {
		src, dst := grids[k-1], grids[k]
		name := fmt.Sprintf("J%d", k)
		b.Stmt(name, aff.NewDomain(name,
			aff.ConstBound(0, 1, n-1),
			aff.LoopBound{Lo: aff.Const(1, 1), Hi: aff.Const(1, n-1)},
		)).
			Writes(jacArr(k), aff.Var(2, 0), aff.Var(2, 1)).
			Reads(jacArr(k-1), aff.Linear(-1, 1, 0), aff.Var(2, 1)).
			Reads(jacArr(k-1), aff.Linear(1, 1, 0), aff.Var(2, 1)).
			Reads(jacArr(k-1), aff.Var(2, 0), aff.Linear(-1, 0, 1)).
			Reads(jacArr(k-1), aff.Var(2, 0), aff.Linear(1, 0, 1)).
			Body(func(iv isl.Vec) {
				i, j := iv[0], iv[1]
				dst.Set(i, j, 0.25*(src.At(i-1, j)+src.At(i+1, j)+src.At(i, j-1)+src.At(i, j+1)))
			})
	}
	sc := b.MustBuild()
	reset := func() {
		for k, g := range grids {
			g.SeedDeterministic(uint64(40 + k))
		}
	}
	reset()
	return &Program{
		Name: sc.Name, SCoP: sc, Reset: reset,
		Hash: func() uint64 { return grids[stages].Hash() },
	}
}

func jacArr(k int) string { return fmt.Sprintf("J%d", k) }

// SeidelChain builds `stages` consecutive Gauss–Seidel-style nests:
// each stage updates its own array in place using already-updated
// neighbours (serializing the nest) plus the same cell of the previous
// stage's array. Polly finds nothing; the cross-loop pipeline overlaps
// the stages — the Listing 1 pattern generalized to k stages.
func SeidelChain(n, stages int) *Program {
	if n < 4 || stages < 1 {
		panic(fmt.Sprintf("kernels: SeidelChain(n=%d, stages=%d)", n, stages))
	}
	grids := make([]*Grid, stages+1)
	for k := range grids {
		grids[k] = NewGrid(n)
	}
	b := scop.NewBuilder(fmt.Sprintf("seidel%d", stages))
	for k := 0; k <= stages; k++ {
		b.Array(seiArr(k), 2)
	}
	for k := 1; k <= stages; k++ {
		src, dst := grids[k-1], grids[k]
		name := fmt.Sprintf("G%d", k)
		b.Stmt(name, aff.NewDomain(name,
			aff.ConstBound(0, 1, n-1),
			aff.LoopBound{Lo: aff.Const(1, 1), Hi: aff.Const(1, n-1)},
		)).
			Writes(seiArr(k), aff.Var(2, 0), aff.Var(2, 1)).
			Reads(seiArr(k), aff.Linear(-1, 1, 0), aff.Var(2, 1)). // updated above
			Reads(seiArr(k), aff.Var(2, 0), aff.Linear(-1, 0, 1)). // updated left
			Reads(seiArr(k-1), aff.Var(2, 0), aff.Var(2, 1)).
			Body(func(iv isl.Vec) {
				i, j := iv[0], iv[1]
				dst.Set(i, j, (dst.At(i-1, j)+dst.At(i, j-1)+src.At(i, j))/3)
			})
	}
	sc := b.MustBuild()
	reset := func() {
		for k, g := range grids {
			g.SeedDeterministic(uint64(50 + k))
		}
	}
	reset()
	return &Program{
		Name: sc.Name, SCoP: sc, Reset: reset,
		Hash: func() uint64 { return grids[stages].Hash() },
	}
}

func seiArr(k int) string { return fmt.Sprintf("S%d", k) }

// TriangularChain builds two nests over triangular iteration domains
// (inner bound depends on the outer variable): the first fills the
// lower triangle of A row by row with a serial recurrence, the second
// consumes A's triangle into B. Exercises non-rectangular domains
// through detection, scheduling, and code generation.
func TriangularChain(n int) *Program {
	if n < 3 {
		panic("kernels: TriangularChain requires n >= 3")
	}
	a := NewGrid(n)
	bg := NewGrid(n)

	b := scop.NewBuilder("triangular")
	b.Array("A", 2).Array("B", 2)
	b.Stmt("S", aff.NewDomain("S",
		aff.ConstBound(0, 0, n),
		aff.LoopBound{Lo: aff.Const(1, 0), Hi: aff.Linear(1, 1)}, // j <= i
	)).
		Writes("A", aff.Var(2, 0), aff.Var(2, 1)).
		Reads("A", aff.Var(2, 0), aff.Var(2, 1)).
		Reads("A", aff.Linear(-1, 1, 0), aff.Var(2, 1)). // previous row
		Body(func(iv isl.Vec) {
			i, j := iv[0], iv[1]
			up := 0.0
			if i > 0 && j < i {
				up = a.At(i-1, j)
			}
			a.Set(i, j, 0.5*a.At(i, j)+0.5*up+1)
		})
	b.Stmt("T", aff.NewDomain("T",
		aff.ConstBound(0, 0, n),
		aff.LoopBound{Lo: aff.Const(1, 0), Hi: aff.Linear(1, 1)},
	)).
		Writes("B", aff.Var(2, 0), aff.Var(2, 1)).
		Reads("A", aff.Var(2, 0), aff.Var(2, 1)).
		Reads("B", aff.Var(2, 0), aff.Linear(-1, 0, 1)).
		Body(func(iv isl.Vec) {
			i, j := iv[0], iv[1]
			left := 0.0
			if j > 0 {
				left = bg.At(i, j-1)
			}
			bg.Set(i, j, a.At(i, j)+0.5*left)
		})
	sc := b.MustBuild()
	reset := func() {
		a.SeedDeterministic(60)
		bg.SeedDeterministic(61)
	}
	reset()
	return &Program{
		Name: "triangular", SCoP: sc, Reset: reset,
		Hash: func() uint64 { return a.Hash() ^ splitmix(bg.Hash()) },
	}
}
