package kernels

import (
	"fmt"

	"repro/internal/isl"
	"repro/internal/isl/aff"
	"repro/internal/mpint"
	"repro/internal/scop"
)

// This file encodes the ten programs of the paper's Table 9 (Figure 9).
// Each program P1–P10 is a sequence of 2–4 for-loop nests; the k-th
// nest updates matrix A_k of multi-precision integers by adding its
// inputs element-wise and advancing each element num_k primes
// (mpint.Work, the GMP next_prime substitute). Every nest additionally
// reads its own A_k[i][j+1] and A_k[i+1][j+1] neighbours, which
// serializes the nest — the paper designs the kernels so Polly cannot
// parallelize any loop — while the cross-nest reads listed in the
// Memory-access column create the pipeline opportunities.
//
// The Table 9 text in our source is partially OCR-garbled; the specs
// below are a documented best-effort reconstruction preserving each
// program's nest count, num_i cost vector, and access-pattern kinds
// (identity, strided A[2i][2j], shifted A[i+3][j], half-column
// A[i][2j], and the multi-source fan-ins).

// Pattern is a cross-nest read access shape from Table 9.
type Pattern int

const (
	// PatID reads A_src[i][j].
	PatID Pattern = iota
	// PatStride2 reads A_src[2i][2j].
	PatStride2
	// PatShift3 reads A_src[i+3][j].
	PatShift3
	// PatHalfCol reads A_src[i][2j].
	PatHalfCol
)

// String names the pattern like the paper's Memory-access column.
func (p Pattern) String() string {
	switch p {
	case PatID:
		return "A[i][j]"
	case PatStride2:
		return "A[2i][2j]"
	case PatShift3:
		return "A[i+3][j]"
	case PatHalfCol:
		return "A[i][2j]"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// exprs returns the row/column index expressions of the pattern.
func (p Pattern) exprs() (row, col aff.Expr) {
	switch p {
	case PatID:
		return aff.Var(2, 0), aff.Var(2, 1)
	case PatStride2:
		return aff.Linear(0, 2, 0), aff.Linear(0, 0, 2)
	case PatShift3:
		return aff.Linear(3, 1, 0), aff.Var(2, 1)
	case PatHalfCol:
		return aff.Var(2, 0), aff.Linear(0, 0, 2)
	}
	panic("kernels: unknown pattern")
}

// CrossRead is one cross-nest read: statement S_k reads matrix A_Src
// (1-based) with the given pattern.
type CrossRead struct {
	Src int
	Pat Pattern
}

// T9Spec describes one Table 9 program.
type T9Spec struct {
	Name  string
	Nums  []int         // num_k per nest; len is the nest count
	Reads [][]CrossRead // Reads[k] lists nest k's cross reads (Reads[0] empty)
}

// Table9 is the reconstructed Table 9 / Figure 9.
var Table9 = []T9Spec{
	{Name: "P1", Nums: []int{1, 1}, Reads: [][]CrossRead{
		{},
		{{1, PatID}},
	}},
	{Name: "P2", Nums: []int{2, 6}, Reads: [][]CrossRead{
		{},
		{{1, PatStride2}},
	}},
	{Name: "P3", Nums: []int{1, 1, 1}, Reads: [][]CrossRead{
		{},
		{{1, PatID}},
		{{1, PatID}, {2, PatID}},
	}},
	{Name: "P4", Nums: []int{2, 2, 8}, Reads: [][]CrossRead{
		{},
		{{1, PatShift3}},
		{{1, PatStride2}, {2, PatStride2}},
	}},
	{Name: "P5", Nums: []int{1, 1, 1, 1}, Reads: [][]CrossRead{
		{},
		{{1, PatID}},
		{{1, PatID}, {2, PatID}},
		{{1, PatID}, {2, PatID}, {3, PatID}},
	}},
	{Name: "P6", Nums: []int{1, 8, 32, 32}, Reads: [][]CrossRead{
		{},
		{{1, PatShift3}},
		{{1, PatShift3}, {2, PatID}},
		{{1, PatShift3}, {2, PatID}, {3, PatID}},
	}},
	{Name: "P7", Nums: []int{1, 8, 8, 8}, Reads: [][]CrossRead{
		{},
		{{1, PatStride2}},
		{{1, PatStride2}, {2, PatStride2}},
		{{1, PatID}, {2, PatID}},
	}},
	{Name: "P8", Nums: []int{1, 1, 1, 1}, Reads: [][]CrossRead{
		{},
		{{1, PatID}},
		{{1, PatID}},
		{{3, PatID}},
	}},
	{Name: "P9", Nums: []int{1, 1, 1, 1}, Reads: [][]CrossRead{
		{},
		{{1, PatHalfCol}},
		{{1, PatID}, {2, PatHalfCol}},
		{{1, PatHalfCol}, {3, PatID}},
	}},
	{Name: "P10", Nums: []int{1, 2, 2, 2}, Reads: [][]CrossRead{
		{},
		{{1, PatShift3}},
		{{2, PatID}},
		{{3, PatID}},
	}},
}

// T9SpecByName looks a spec up by program name ("P1".."P10").
func T9SpecByName(name string) (T9Spec, bool) {
	for _, s := range Table9 {
		if s.Name == name {
			return s, true
		}
	}
	return T9Spec{}, false
}

// BuildTable9 instantiates one Table 9 program with N×N matrices whose
// cells hold size multi-precision integers.
func BuildTable9(spec T9Spec, n, size int) *Program {
	if n < 8 {
		panic("kernels: Table 9 programs require n >= 8")
	}
	nests := len(spec.Nums)
	mats := make([]*mpint.Matrix, nests+1) // 1-based
	for k := 1; k <= nests; k++ {
		mats[k] = mpint.NewMatrix(n, size)
	}

	b := scop.NewBuilder(spec.Name)
	for k := 1; k <= nests; k++ {
		b.Array(matName(k), 2)
	}
	for k := 1; k <= nests; k++ {
		rows, cols := n-1, n-1
		for _, cr := range spec.Reads[k-1] {
			switch cr.Pat {
			case PatStride2:
				rows = minInt(rows, n/2-1)
				cols = minInt(cols, n/2-1)
			case PatShift3:
				rows = minInt(rows, n-4)
			case PatHalfCol:
				cols = minInt(cols, n/2-1)
			}
		}
		stmtName := fmt.Sprintf("S%d", k)
		sb := b.Stmt(stmtName, aff.RectDomain(stmtName, rows, cols)).
			Writes(matName(k), aff.Var(2, 0), aff.Var(2, 1)).
			// Serializing self-neighbour reads (same shape as Listing 1).
			Reads(matName(k), aff.Var(2, 0), aff.Var(2, 1)).
			Reads(matName(k), aff.Var(2, 0), aff.Linear(1, 0, 1)).
			Reads(matName(k), aff.Linear(1, 1, 0), aff.Linear(1, 0, 1))
		crossReads := spec.Reads[k-1]
		for _, cr := range crossReads {
			row, col := cr.Pat.exprs()
			sb.Reads(matName(cr.Src), row, col)
		}
		dst := mats[k]
		num := spec.Nums[k-1]
		crs := append([]CrossRead(nil), crossReads...)
		srcMats := mats
		sb.Body(func(iv isl.Vec) {
			i, j := iv[0], iv[1]
			inputs := make([]*mpint.Data, 0, 2+len(crs))
			inputs = append(inputs, dst.At(i, j+1), dst.At(i+1, j+1))
			for _, cr := range crs {
				src := srcMats[cr.Src]
				switch cr.Pat {
				case PatID:
					inputs = append(inputs, src.At(i, j))
				case PatStride2:
					inputs = append(inputs, src.At(2*i, 2*j))
				case PatShift3:
					inputs = append(inputs, src.At(i+3, j))
				case PatHalfCol:
					inputs = append(inputs, src.At(i, 2*j))
				}
			}
			mpint.Work(dst.At(i, j), inputs, num)
		})
	}
	sc := b.MustBuild()

	reset := func() {
		for k := 1; k <= nests; k++ {
			mats[k].Reseed(uint64(k))
		}
	}
	reset()
	return &Program{
		Name:  spec.Name,
		SCoP:  sc,
		Reset: reset,
		Hash: func() uint64 {
			h := uint64(0)
			for k := 1; k <= nests; k++ {
				h = h*1099511628211 ^ mats[k].Hash()
			}
			return h
		},
	}
}

// Table9Program builds the named Table 9 program.
func Table9Program(name string, n, size int) (*Program, error) {
	spec, ok := T9SpecByName(name)
	if !ok {
		return nil, fmt.Errorf("kernels: unknown Table 9 program %q", name)
	}
	return BuildTable9(spec, n, size), nil
}

func matName(k int) string { return fmt.Sprintf("A%d", k) }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
