package kernels_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/exec"
	"repro/internal/kernels"
)

func TestGridBasics(t *testing.T) {
	g := kernels.NewGrid(4)
	g.Set(1, 2, 3.5)
	if g.At(1, 2) != 3.5 {
		t.Fatal("At/Set broken")
	}
	if len(g.Row(1)) != 4 || g.Row(1)[2] != 3.5 {
		t.Fatal("Row broken")
	}
	h := g.Hash()
	g.Set(0, 0, 1)
	if g.Hash() == h {
		t.Fatal("hash insensitive to change")
	}
	c := g.Clone()
	if !c.Equal(g) {
		t.Fatal("clone not equal")
	}
	c.Set(3, 3, -1)
	if c.Equal(g) {
		t.Fatal("clone aliases")
	}
}

func TestGridSeedDeterministic(t *testing.T) {
	a, b := kernels.NewGrid(6), kernels.NewGrid(6)
	a.SeedDeterministic(9)
	b.SeedDeterministic(9)
	if !a.Equal(b) {
		t.Fatal("seeding not deterministic")
	}
	b.SeedDeterministic(10)
	if a.Equal(b) {
		t.Fatal("different seeds identical")
	}
}

func TestTable9SpecsWellFormed(t *testing.T) {
	if len(kernels.Table9) != 10 {
		t.Fatalf("Table9 has %d programs", len(kernels.Table9))
	}
	for _, spec := range kernels.Table9 {
		if len(spec.Nums) != len(spec.Reads) {
			t.Errorf("%s: %d nums but %d read lists", spec.Name, len(spec.Nums), len(spec.Reads))
		}
		if len(spec.Reads[0]) != 0 {
			t.Errorf("%s: first nest has cross reads", spec.Name)
		}
		for k, reads := range spec.Reads {
			for _, r := range reads {
				if r.Src < 1 || r.Src > k {
					t.Errorf("%s nest %d: read of future/invalid array A%d", spec.Name, k+1, r.Src)
				}
			}
		}
	}
	if _, ok := kernels.T9SpecByName("P7"); !ok {
		t.Error("P7 lookup failed")
	}
	if _, ok := kernels.T9SpecByName("P11"); ok {
		t.Error("P11 lookup succeeded")
	}
	if _, err := kernels.Table9Program("nope", 8, 2); err == nil {
		t.Error("expected error for unknown program")
	}
}

func TestTable9ProgramsVerify(t *testing.T) {
	// Every Table 9 program must produce identical results under the
	// sequential, pipelined, and Polly-baseline executors.
	for _, spec := range kernels.Table9 {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			p := kernels.BuildTable9(spec, 8, 2)
			if err := exec.Verify(p, 4, core.Options{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTable9NestsAreSerial(t *testing.T) {
	// The paper designs the kernels so Polly cannot parallelize any
	// loop: every nest must be serial in both dimensions.
	for _, spec := range kernels.Table9 {
		p := kernels.BuildTable9(spec, 8, 2)
		if got := exec.ParallelizableNests(p); got != 0 {
			t.Errorf("%s: %d parallelizable nests, want 0", spec.Name, got)
		}
	}
}

func TestTable9PipelineDetected(t *testing.T) {
	// Every consecutive pair listed in the Memory-access column must
	// yield a pipeline map.
	for _, spec := range kernels.Table9 {
		p := kernels.BuildTable9(spec, 12, 2)
		info, err := core.Detect(p.SCoP, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		wantPairs := 0
		seen := map[[2]int]bool{}
		for k, reads := range spec.Reads {
			for _, r := range reads {
				key := [2]int{r.Src, k + 1}
				if !seen[key] {
					seen[key] = true
					wantPairs++
				}
			}
		}
		if len(info.Pairs) != wantPairs {
			t.Errorf("%s: %d pipeline pairs, want %d", spec.Name, len(info.Pairs), wantPairs)
		}
	}
}

func TestMMChainVariants(t *testing.T) {
	for _, variant := range []kernels.Variant{kernels.MM, kernels.MMT, kernels.GMM, kernels.GMMT} {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			t.Parallel()
			p := kernels.MMChain(3, 16, variant)
			if err := exec.Verify(p, 4, core.Options{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMMParallelismStructure(t *testing.T) {
	// mm/mmt: every nest's row loop is parallel; gmm/gmmt: none.
	mm := kernels.MMChain(3, 12, kernels.MM)
	if got := exec.ParallelizableNests(mm); got != 3 {
		t.Errorf("mm: %d parallelizable nests, want 3", got)
	}
	gmm := kernels.MMChain(3, 12, kernels.GMM)
	if got := exec.ParallelizableNests(gmm); got != 0 {
		t.Errorf("gmm: %d parallelizable nests, want 0", got)
	}
}

func TestMMChainPipelineRowGranular(t *testing.T) {
	p := kernels.MMChain(2, 10, kernels.GMM)
	info, err := core.Detect(p.SCoP, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Row-granular: each statement splits into one block per row.
	for _, si := range info.Stmts {
		if len(si.Blocks) != 10 {
			t.Errorf("%s: %d blocks, want 10", si.Stmt.Name, len(si.Blocks))
		}
	}
	g := deps.Analyze(p.SCoP)
	s1, s2 := p.SCoP.Statement("S1"), p.SCoP.Statement("S2")
	if !g.DependsOn(s2, s1) {
		t.Error("S2 should depend on S1")
	}
}

func TestMMTransposedMatchesPlainStructure(t *testing.T) {
	// mm and mmt must have identical dependence structure (only data
	// layout differs) but different results (different operands).
	a := kernels.MMChain(2, 8, kernels.MM)
	b := kernels.MMChain(2, 8, kernels.MMT)
	if exec.ParallelizableNests(a) != exec.ParallelizableNests(b) {
		t.Error("mm and mmt differ in parallel structure")
	}
}

func TestVariantString(t *testing.T) {
	if kernels.MM.String() != "mm" || kernels.GMMT.String() != "gmmt" {
		t.Fatal("variant names wrong")
	}
	if !strings.Contains(kernels.Variant(9).String(), "9") {
		t.Fatal("unknown variant string")
	}
	if kernels.PatStride2.String() != "A[2i][2j]" {
		t.Fatal("pattern string wrong")
	}
	if !strings.Contains(kernels.Pattern(9).String(), "9") {
		t.Fatal("unknown pattern string")
	}
}

func TestProgramString(t *testing.T) {
	p := kernels.Listing1(8)
	if !strings.Contains(p.String(), "listing1") {
		t.Fatalf("String = %q", p.String())
	}
}

func TestResetRestoresHash(t *testing.T) {
	p := kernels.MMChain(2, 8, kernels.MM)
	h := p.Hash()
	exec.Sequential(p)
	p.Reset()
	if p.Hash() != h {
		t.Fatal("Reset did not restore initial state")
	}
}
