// Package kernels provides the workloads of the paper's evaluation:
// the motivating Listing 1 and Listing 3 stencil programs, the ten
// GMP-style compute-intensive programs P1–P10 of Table 9, and the
// matrix-multiplication chains (nmm, nmmt, ngmm, ngmmt) of Figure 11.
// Each workload is a scop.SCoP with executable statement bodies plus
// state management (reset, hashing) so that different executors can be
// compared for both correctness and speed.
package kernels

import (
	"fmt"
	"math"

	"repro/internal/scop"
)

// Grid is a dense row-major N×N matrix of float64 used by the stencil
// and matrix workloads.
type Grid struct {
	N     int
	Cells []float64
}

// NewGrid allocates an N×N grid of zeros.
func NewGrid(n int) *Grid {
	return &Grid{N: n, Cells: make([]float64, n*n)}
}

// At returns the value at row i, column j.
func (g *Grid) At(i, j int) float64 { return g.Cells[i*g.N+j] }

// Set stores v at row i, column j.
func (g *Grid) Set(i, j int, v float64) { g.Cells[i*g.N+j] = v }

// Row returns the slice aliasing row i.
func (g *Grid) Row(i int) []float64 { return g.Cells[i*g.N : (i+1)*g.N] }

// SeedDeterministic fills the grid with a reproducible pattern derived
// from the cell coordinates and a stream seed.
func (g *Grid) SeedDeterministic(seed uint64) {
	for i := 0; i < g.N; i++ {
		for j := 0; j < g.N; j++ {
			h := splitmix(seed ^ uint64(i)<<32 ^ uint64(j))
			// Map to a smallish stable float in [0, 8).
			g.Set(i, j, float64(h%8192)/1024.0)
		}
	}
}

// splitmix is SplitMix64, a tiny high-quality mixer for deterministic
// seeding without importing math/rand.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash returns an order-sensitive FNV-style digest of the grid
// contents, suitable for comparing executor results exactly.
func (g *Grid) Hash() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range g.Cells {
		h ^= math.Float64bits(v)
		h *= prime
	}
	return h
}

// Equal reports whether two grids hold bit-identical contents.
func (g *Grid) Equal(o *Grid) bool {
	if g.N != o.N {
		return false
	}
	for i, v := range g.Cells {
		if math.Float64bits(v) != math.Float64bits(o.Cells[i]) {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (g *Grid) Clone() *Grid {
	c := NewGrid(g.N)
	copy(c.Cells, g.Cells)
	return c
}

// Program couples a SCoP with its mutable state so executors can be
// compared: Reset re-seeds the state, Hash digests every output array.
type Program struct {
	Name  string
	SCoP  *scop.SCoP
	Reset func()
	Hash  func() uint64
}

// String identifies the program.
func (p *Program) String() string { return fmt.Sprintf("kernels.Program(%s)", p.Name) }
