package kernels

import (
	"time"

	"repro/internal/isl"
)

// Amplify wraps every statement body of p so each dynamic instance
// additionally waits d on the wall clock, without changing the
// computed values or the Hash. It plays the role of the paper's
// gmp_data SIZE knob: the Table 9 programs carry configurable
// per-iteration cost so that run-time schedule structure (overlap,
// stall, critical path) dominates task-management overhead; the
// listing kernels' raw bodies are a handful of float ops, far below
// it. The cost is a timed wait rather than a compute spin so that the
// elapsed time of a schedule reflects its structure even on a
// single-core host — the real-time counterpart of internal/simsched's
// virtual-time argument. On Linux the sleep granularity floors the
// effective d at roughly a millisecond.
func Amplify(p *Program, d time.Duration) {
	if d <= 0 {
		return
	}
	for k := range p.SCoP.Stmts {
		body := p.SCoP.Stmts[k].Body
		if body == nil {
			continue
		}
		p.SCoP.Stmts[k].Body = func(iv isl.Vec) {
			body(iv)
			time.Sleep(d)
		}
	}
}
