package repro_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesRun executes every example end to end with `go run`,
// asserting it exits cleanly and prints its key success marker. This
// keeps the examples honest as the API evolves.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow under -short")
	}
	cases := []struct {
		dir    string
		marker string
	}{
		{"quickstart", "verification: pipelined == parloop == sequential"},
		{"stencil3", "== annotated AST (Figure 6) =="},
		{"imagepipeline", "verification: all executors agree"},
		{"gmmchain", "only cross-loop pipelining gains"},
		{"histogram", "pipelined (last-writer deps) == sequential"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", c.dir))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			if !strings.Contains(string(out), c.marker) {
				t.Fatalf("output missing %q:\n%s", c.marker, out)
			}
		})
	}
}
